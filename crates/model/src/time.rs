//! Signed, integer-nanosecond time arithmetic.
//!
//! Every quantity in the paper — release times, backward times, sampling
//! windows — lives on a signed time axis: the analyzed job's release is
//! pinned to zero and sources are traced *backwards*, and the best-case
//! backward time of a chain may even be negative (paper, end of §III).
//! Floating point would silently break the `⌊·⌋`/`⌈·⌉` steps of Theorem 2,
//! so both [`Instant`] (a point on the time axis) and [`Duration`] (a signed
//! span) wrap an `i64` nanosecond count.
//!
//! # Examples
//!
//! ```
//! use disparity_model::time::{Duration, Instant};
//!
//! let period = Duration::from_millis(10);
//! let release = Instant::ZERO + period * 3;
//! assert_eq!(release - Instant::ZERO, Duration::from_millis(30));
//! assert_eq!(period.as_micros(), 10_000);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Sub, SubAssign};


/// A signed span of time with nanosecond resolution.
///
/// Unlike [`std::time::Duration`], this type is signed: subtracting a later
/// instant from an earlier one, or computing a best-case backward time, may
/// legitimately produce a negative span.
///
/// # Examples
///
/// ```
/// use disparity_model::time::Duration;
///
/// let d = Duration::from_micros(1500) - Duration::from_millis(2);
/// assert!(d.is_negative());
/// assert_eq!(d.as_micros(), -500);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct Duration(i64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// Largest representable span.
    pub const MAX: Duration = Duration(i64::MAX);
    /// Smallest (most negative) representable span.
    pub const MIN: Duration = Duration(i64::MIN);

    /// Creates a span from a signed nanosecond count.
    #[must_use]
    pub const fn from_nanos(nanos: i64) -> Self {
        Duration(nanos)
    }

    /// Creates a span from a (possibly fractional) nanosecond count,
    /// rounding to the nearest integer with the saturating float→int
    /// conversion (`NaN` maps to zero).
    ///
    /// This is the workspace's single blessed float→time cast site; all
    /// other code must route float scaling through here or [`scale`]
    /// (enforced by `srclint`'s `time-cast` rule, see `srclint.allow`).
    ///
    /// [`scale`]: Duration::scale
    #[must_use]
    pub fn from_nanos_f64(nanos: f64) -> Self {
        Duration(nanos.round() as i64)
    }

    /// Scales the span by a float factor, rounding to the nearest
    /// nanosecond and saturating at the representable range.
    #[must_use]
    pub fn scale(self, factor: f64) -> Self {
        Duration::from_nanos_f64(self.0 as f64 * factor)
    }

    /// Creates a span from a signed microsecond count.
    #[must_use]
    pub const fn from_micros(micros: i64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a span from a signed millisecond count.
    #[must_use]
    pub const fn from_millis(millis: i64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a span from a signed second count.
    #[must_use]
    pub const fn from_secs(secs: i64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// The span as whole nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// The span as whole microseconds, truncated towards zero.
    #[must_use]
    pub const fn as_micros(self) -> i64 {
        self.0 / 1_000
    }

    /// The span as whole milliseconds, truncated towards zero.
    #[must_use]
    pub const fn as_millis(self) -> i64 {
        self.0 / 1_000_000
    }

    /// The span as fractional milliseconds (for reporting only).
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is strictly negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` if the span is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `true` if the span is strictly positive.
    #[must_use]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Absolute value of the span.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the span is [`Duration::MIN`].
    #[must_use]
    pub const fn abs(self) -> Self {
        Duration(self.0.abs())
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Duration(self.0.min(other.0))
    }

    /// Clamp the span to be at least zero.
    #[must_use]
    pub fn max_zero(self) -> Self {
        self.max(Duration::ZERO)
    }

    /// Checked addition, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        self.0.checked_add(rhs.0).map(Duration)
    }

    /// Checked subtraction, `None` on overflow.
    #[must_use]
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        self.0.checked_sub(rhs.0).map(Duration)
    }

    /// Checked multiplication by a scalar, `None` on overflow.
    #[must_use]
    pub fn checked_mul(self, rhs: i64) -> Option<Self> {
        self.0.checked_mul(rhs).map(Duration)
    }

    /// Floor division by another span (exact `⌊a/b⌋` on signed values).
    ///
    /// This is the `⌊·⌋` of Theorem 2: `Duration::from_millis(-25)
    /// .div_floor(Duration::from_millis(10))` is `-3`, not `-2`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use disparity_model::time::Duration;
    ///
    /// let t = Duration::from_millis(10);
    /// assert_eq!(Duration::from_millis(25).div_floor(t), 2);
    /// assert_eq!(Duration::from_millis(-25).div_floor(t), -3);
    /// ```
    #[must_use]
    pub fn div_floor(self, rhs: Self) -> i64 {
        div_floor(self.0, rhs.0)
    }

    /// Ceiling division by another span (exact `⌈a/b⌉` on signed values).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use disparity_model::time::Duration;
    ///
    /// let t = Duration::from_millis(10);
    /// assert_eq!(Duration::from_millis(25).div_ceil(t), 3);
    /// assert_eq!(Duration::from_millis(-25).div_ceil(t), -2);
    /// ```
    #[must_use]
    pub fn div_ceil(self, rhs: Self) -> i64 {
        div_ceil(self.0, rhs.0)
    }
}

/// Exact floor division on signed integers.
///
/// # Panics
///
/// Panics if `b` is zero.
#[must_use]
pub fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    let r = a % b;
    if (r != 0) && ((r < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Exact ceiling division on signed integers.
///
/// # Panics
///
/// Panics if `b` is zero.
#[must_use]
pub fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    let r = a % b;
    if (r != 0) && ((r < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Neg for Duration {
    type Output = Duration;
    fn neg(self) -> Duration {
        Duration(-self.0)
    }
}

impl Mul<i64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: i64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for i64 {
    type Output = Duration;
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

impl Div<i64> for Duration {
    type Output = Duration;
    fn div(self, rhs: i64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns % 1_000_000 == 0 {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns % 1_000 == 0 {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A point on the (signed) simulated time axis, nanosecond resolution.
///
/// The origin is arbitrary; the analysis pins the analyzed job's release at
/// [`Instant::ZERO`] and traces sources into negative territory.
///
/// # Examples
///
/// ```
/// use disparity_model::time::{Duration, Instant};
///
/// let t0 = Instant::ZERO;
/// let t1 = t0 + Duration::from_millis(5);
/// assert!(t1 > t0);
/// assert_eq!(t1.elapsed_since(t0), Duration::from_millis(5));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
)]
pub struct Instant(i64);

impl Instant {
    /// The time origin.
    pub const ZERO: Instant = Instant(0);
    /// Latest representable instant.
    pub const MAX: Instant = Instant(i64::MAX);
    /// Earliest representable instant.
    pub const MIN: Instant = Instant(i64::MIN);

    /// Creates an instant `nanos` nanoseconds from the origin.
    #[must_use]
    pub const fn from_nanos(nanos: i64) -> Self {
        Instant(nanos)
    }

    /// Creates an instant `millis` milliseconds from the origin.
    #[must_use]
    pub const fn from_millis(millis: i64) -> Self {
        Instant(millis * 1_000_000)
    }

    /// Nanoseconds from the origin (possibly negative).
    #[must_use]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// The span from `earlier` to `self` (negative if `self` is earlier).
    #[must_use]
    pub fn elapsed_since(self, earlier: Instant) -> Duration {
        Duration(self.0 - earlier.0)
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Instant(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Instant(self.0.min(other.0))
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    fn sub(self, rhs: Duration) -> Instant {
        Instant(self.0 - rhs.as_nanos())
    }
}

impl Sub for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Duration(self.0))
    }
}

/// Least common multiple of a set of periods (the hyperperiod).
///
/// Returns `None` for an empty iterator or if any period is non-positive or
/// the result overflows `i64`.
///
/// # Examples
///
/// ```
/// use disparity_model::time::{hyperperiod, Duration};
///
/// let periods = [Duration::from_millis(10), Duration::from_millis(4)];
/// assert_eq!(hyperperiod(periods), Some(Duration::from_millis(20)));
/// ```
#[must_use]
pub fn hyperperiod<I: IntoIterator<Item = Duration>>(periods: I) -> Option<Duration> {
    let mut acc: Option<i64> = None;
    for p in periods {
        let p = p.as_nanos();
        if p <= 0 {
            return None;
        }
        acc = Some(match acc {
            None => p,
            Some(a) => {
                let g = gcd(a, p);
                (a / g).checked_mul(p)?
            }
        });
    }
    acc.map(Duration::from_nanos)
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
    }

    #[test]
    fn negative_spans_behave() {
        let d = Duration::from_millis(-3);
        assert!(d.is_negative());
        assert_eq!(d.abs(), Duration::from_millis(3));
        assert_eq!(-d, Duration::from_millis(3));
        assert_eq!(d.max_zero(), Duration::ZERO);
    }

    #[test]
    fn div_floor_matches_mathematical_floor() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_floor(7, -2), -4);
        assert_eq!(div_floor(-7, -2), 3);
        assert_eq!(div_floor(6, 2), 3);
        assert_eq!(div_floor(-6, 2), -3);
        assert_eq!(div_floor(0, 5), 0);
    }

    #[test]
    fn div_ceil_matches_mathematical_ceil() {
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(7, -2), -3);
        assert_eq!(div_ceil(-7, -2), 4);
        assert_eq!(div_ceil(6, 2), 3);
        assert_eq!(div_ceil(-6, 2), -3);
        assert_eq!(div_ceil(0, 5), 0);
    }

    #[test]
    fn instant_duration_arithmetic_round_trips() {
        let t = Instant::from_nanos(42);
        let d = Duration::from_nanos(58);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.elapsed_since(t + d), -d);
    }

    #[test]
    fn hyperperiod_of_waters_periods() {
        let periods = [1i64, 2, 5, 10, 20, 50, 100, 200]
            .into_iter()
            .map(Duration::from_millis);
        assert_eq!(hyperperiod(periods), Some(Duration::from_millis(200)));
    }

    #[test]
    fn hyperperiod_rejects_degenerate_input() {
        assert_eq!(hyperperiod([]), None);
        assert_eq!(hyperperiod([Duration::ZERO]), None);
        assert_eq!(hyperperiod([Duration::from_millis(-5)]), None);
    }

    #[test]
    fn display_picks_coarsest_exact_unit() {
        assert_eq!(Duration::from_millis(5).to_string(), "5ms");
        assert_eq!(Duration::from_micros(1500).to_string(), "1500us");
        assert_eq!(Duration::from_nanos(12).to_string(), "12ns");
    }

    #[test]
    fn duration_sum_and_scalar_ops() {
        let total: Duration = [1, 2, 3].into_iter().map(Duration::from_millis).sum();
        assert_eq!(total, Duration::from_millis(6));
        assert_eq!(Duration::from_millis(2) * 3, Duration::from_millis(6));
        assert_eq!(3 * Duration::from_millis(2), Duration::from_millis(6));
        assert_eq!(Duration::from_millis(7) / 2, Duration::from_micros(3500));
    }

    #[test]
    fn checked_ops_catch_overflow() {
        assert_eq!(Duration::MAX.checked_add(Duration::from_nanos(1)), None);
        assert_eq!(Duration::MIN.checked_sub(Duration::from_nanos(1)), None);
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(
            Duration::from_nanos(2).checked_mul(3),
            Some(Duration::from_nanos(6))
        );
    }
}
