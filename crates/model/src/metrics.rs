//! Structural metrics of cause-effect graphs.
//!
//! Chain enumeration is exponential in the worst case; these O(V + E)
//! dynamic programs let a caller size budgets *before* enumerating:
//! [`chain_count_to`] gives the exact number of source-to-task chains,
//! [`depth`] the longest path, and [`GraphProfile`] a one-stop summary.

use crate::graph::CauseEffectGraph;
use crate::ids::TaskId;

/// Exact number of chains (source-to-`task` paths), saturating at
/// `u64::MAX` — path counts double per diamond, so they overflow quickly
/// on dense DAGs.
///
/// # Panics
///
/// Panics if `task` does not belong to `graph`.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::metrics::chain_count_to;
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
///
/// // diamond: 2 paths into the sink
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let mk = |n: &str| TaskSpec::periodic(n, ms(10));
/// let s = b.add_task(mk("s"));
/// let a = b.add_task(mk("a").wcet(ms(1)).on_ecu(ecu));
/// let c = b.add_task(mk("c").wcet(ms(1)).on_ecu(ecu));
/// let t = b.add_task(mk("t").wcet(ms(1)).on_ecu(ecu));
/// b.connect(s, a);
/// b.connect(s, c);
/// b.connect(a, t);
/// b.connect(c, t);
/// let g = b.build()?;
/// assert_eq!(chain_count_to(&g, t), 2);
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[must_use]
pub fn chain_count_to(graph: &CauseEffectGraph, task: TaskId) -> u64 {
    let mut counts = vec![0u64; graph.task_count()];
    for &v in graph.topological_order() {
        if graph.is_source(v) {
            counts[v.index()] = 1;
        } else {
            let mut total = 0u64;
            for p in graph.predecessors(v) {
                total = total.saturating_add(counts[p.index()]);
            }
            counts[v.index()] = total;
        }
        if v == task {
            break;
        }
    }
    counts[task.index()]
}

/// Length (in tasks) of the longest chain ending at `task`.
///
/// # Panics
///
/// Panics if `task` does not belong to `graph`.
#[must_use]
pub fn depth_to(graph: &CauseEffectGraph, task: TaskId) -> usize {
    let mut depth = vec![1usize; graph.task_count()];
    for &v in graph.topological_order() {
        for p in graph.predecessors(v) {
            depth[v.index()] = depth[v.index()].max(depth[p.index()] + 1);
        }
        if v == task {
            break;
        }
    }
    depth[task.index()]
}

/// Length (in tasks) of the longest chain anywhere in the graph.
#[must_use]
pub fn depth(graph: &CauseEffectGraph) -> usize {
    graph
        .sinks()
        .into_iter()
        .map(|s| depth_to(graph, s))
        .max()
        .unwrap_or(0)
}

/// A one-stop structural summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphProfile {
    /// Number of tasks.
    pub tasks: usize,
    /// Number of channels.
    pub channels: usize,
    /// Number of source tasks.
    pub sources: usize,
    /// Number of sink tasks.
    pub sinks: usize,
    /// Longest chain length in tasks.
    pub depth: usize,
    /// Exact chain count into the single sink, or the maximum over sinks
    /// (saturating).
    pub max_chain_count: u64,
}

/// Computes the [`GraphProfile`] of a graph.
#[must_use]
pub fn profile(graph: &CauseEffectGraph) -> GraphProfile {
    let sinks = graph.sinks();
    GraphProfile {
        tasks: graph.task_count(),
        channels: graph.channel_count(),
        sources: graph.sources().len(),
        sinks: sinks.len(),
        depth: depth(graph),
        max_chain_count: sinks
            .iter()
            .map(|&s| chain_count_to(graph, s))
            .max()
            .unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::task::TaskSpec;
    use crate::time::Duration;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    /// k stacked diamonds: path count 2^k.
    fn diamonds(k: usize) -> (CauseEffectGraph, TaskId) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let mut prev = b.add_task(TaskSpec::periodic("s", ms(10)));
        for i in 0..k {
            let l = b.add_task(
                TaskSpec::periodic(format!("l{i}"), ms(10))
                    .wcet(ms(1))
                    .on_ecu(e),
            );
            let r = b.add_task(
                TaskSpec::periodic(format!("r{i}"), ms(10))
                    .wcet(ms(1))
                    .on_ecu(e),
            );
            let j = b.add_task(
                TaskSpec::periodic(format!("j{i}"), ms(10))
                    .wcet(ms(1))
                    .on_ecu(e),
            );
            b.connect(prev, l);
            b.connect(prev, r);
            b.connect(l, j);
            b.connect(r, j);
            prev = j;
        }
        (b.build().unwrap(), prev)
    }

    #[test]
    fn diamond_chain_counts_are_exact_powers() {
        for k in 1..6 {
            let (g, sink) = diamonds(k);
            assert_eq!(chain_count_to(&g, sink), 1 << k, "k={k}");
        }
    }

    #[test]
    fn depth_counts_tasks_on_longest_path() {
        let (g, sink) = diamonds(3);
        // s + 3 × (layer + join) = 1 + 3*2 = 7 tasks on the longest path.
        assert_eq!(depth_to(&g, sink), 7);
        assert_eq!(depth(&g), 7);
    }

    #[test]
    fn source_metrics_are_trivial() {
        let (g, _) = diamonds(2);
        let s = g.find_task("s").unwrap();
        assert_eq!(chain_count_to(&g, s), 1);
        assert_eq!(depth_to(&g, s), 1);
    }

    #[test]
    fn profile_summarizes() {
        let (g, _) = diamonds(2);
        let p = profile(&g);
        assert_eq!(p.tasks, 7);
        assert_eq!(p.sources, 1);
        assert_eq!(p.sinks, 1);
        assert_eq!(p.depth, 5);
        assert_eq!(p.max_chain_count, 4);
    }

    #[test]
    fn counts_saturate_instead_of_overflowing() {
        // 70 stacked diamonds exceed u64? 2^70 saturates.
        let (g, sink) = diamonds(70);
        assert_eq!(chain_count_to(&g, sink), u64::MAX);
    }
}
