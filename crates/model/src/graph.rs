//! The cause-effect graph `G = ⟨V, E⟩`.
//!
//! A [`CauseEffectGraph`] is an immutable-by-default DAG of [`Task`]s
//! connected by [`Channel`]s and mapped onto [`Ecu`]s, as defined in §II of
//! the paper. Construct one with [`SystemBuilder`](crate::builder::SystemBuilder);
//! the only permitted in-place mutation is resizing a channel buffer
//! ([`CauseEffectGraph::set_channel_capacity`]), which is what the §IV
//! optimization needs.
//!
//! # Examples
//!
//! ```
//! use disparity_model::builder::SystemBuilder;
//! use disparity_model::task::TaskSpec;
//! use disparity_model::time::Duration;
//!
//! let mut b = SystemBuilder::new();
//! let ecu = b.add_ecu("ecu0");
//! let cam = b.add_task(TaskSpec::periodic("camera", Duration::from_millis(33)));
//! let proc = b.add_task(
//!     TaskSpec::periodic("process", Duration::from_millis(33))
//!         .execution(Duration::from_millis(2), Duration::from_millis(5))
//!         .on_ecu(ecu),
//! );
//! b.connect(cam, proc);
//! let g = b.build()?;
//! assert_eq!(g.sources(), vec![cam]);
//! assert_eq!(g.sinks(), vec![proc]);
//! # Ok::<(), disparity_model::error::ModelError>(())
//! ```


use crate::chain::Chain;
use crate::channel::Channel;
use crate::ecu::Ecu;
use crate::error::ModelError;
use crate::ids::{ChannelId, EcuId, TaskId};
use crate::task::Task;
use crate::time::{hyperperiod, Duration};

/// A validated directed acyclic cause-effect graph.
///
/// Invariants (enforced at build time):
/// * the edge relation is acyclic;
/// * every task with non-zero execution cost is mapped to an ECU;
/// * priorities are unique among tasks sharing an ECU;
/// * `B(τ) ≤ W(τ)` and `T(τ) > 0` for every task;
/// * every channel capacity is at least 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CauseEffectGraph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) ecus: Vec<Ecu>,
    pub(crate) out_edges: Vec<Vec<ChannelId>>,
    pub(crate) in_edges: Vec<Vec<ChannelId>>,
    pub(crate) topo: Vec<TaskId>,
}

impl CauseEffectGraph {
    /// All tasks, indexed by [`TaskId::index`].
    #[must_use]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The task with the given id, or `None` if out of range.
    #[must_use]
    pub fn get_task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Looks a task up by name (first match).
    #[must_use]
    pub fn find_task(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().find(|t| t.name == name).map(|t| t.id)
    }

    /// All channels, indexed by [`ChannelId::index`].
    #[must_use]
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The channel with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn channel(&self, id: ChannelId) -> &Channel {
        &self.channels[id.index()]
    }

    /// The channel from `src` to `dst`, if that edge exists.
    #[must_use]
    pub fn channel_between(&self, src: TaskId, dst: TaskId) -> Option<&Channel> {
        self.out_edges
            .get(src.index())?
            .iter()
            .map(|&c| &self.channels[c.index()])
            .find(|c| c.dst == dst)
    }

    /// All execution resources, indexed by [`EcuId::index`].
    #[must_use]
    pub fn ecus(&self) -> &[Ecu] {
        &self.ecus
    }

    /// The execution resource with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn ecu(&self, id: EcuId) -> &Ecu {
        &self.ecus[id.index()]
    }

    /// Number of tasks.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Outgoing channels of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn out_channels(&self, id: TaskId) -> &[ChannelId] {
        &self.out_edges[id.index()]
    }

    /// Incoming channels of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn in_channels(&self, id: TaskId) -> &[ChannelId] {
        &self.in_edges[id.index()]
    }

    /// Direct successors of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn successors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.out_edges[id.index()]
            .iter()
            .map(|&c| self.channels[c.index()].dst)
    }

    /// Direct predecessors of a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn predecessors(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        self.in_edges[id.index()]
            .iter()
            .map(|&c| self.channels[c.index()].src)
    }

    /// `true` if the task has no incoming edges (a *source* of `G`).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn is_source(&self, id: TaskId) -> bool {
        self.in_edges[id.index()].is_empty()
    }

    /// `true` if the task has no outgoing edges (a *sink* of `G`).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn is_sink(&self, id: TaskId) -> bool {
        self.out_edges[id.index()].is_empty()
    }

    /// All source tasks, in id order.
    #[must_use]
    pub fn sources(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .map(|t| t.id)
            .filter(|&t| self.is_source(t))
            .collect()
    }

    /// All sink tasks, in id order.
    #[must_use]
    pub fn sinks(&self) -> Vec<TaskId> {
        self.tasks
            .iter()
            .map(|t| t.id)
            .filter(|&t| self.is_sink(t))
            .collect()
    }

    /// A topological order of the tasks (sources first).
    #[must_use]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topo
    }

    /// Tasks mapped to the given resource, in id order.
    pub fn tasks_on_ecu(&self, ecu: EcuId) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks
            .iter()
            .filter(move |t| t.ecu == Some(ecu))
            .map(|t| t.id)
    }

    /// `true` if both tasks are mapped to the same resource.
    ///
    /// Unmapped (zero-cost) tasks share a resource with nobody.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    #[must_use]
    pub fn same_ecu(&self, a: TaskId, b: TaskId) -> bool {
        match (self.task(a).ecu, self.task(b).ecu) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// `true` if `a ∈ hp(b)`: both tasks share an ECU and `a` has the more
    /// urgent priority.
    ///
    /// # Panics
    ///
    /// Panics if either id does not belong to this graph.
    #[must_use]
    pub fn in_hp(&self, a: TaskId, b: TaskId) -> bool {
        self.same_ecu(a, b) && self.task(a).priority.is_higher_than(self.task(b).priority)
    }

    /// The set `hp(τ)` of same-ECU tasks with more urgent priority.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn hp_tasks(&self, id: TaskId) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| t.id != id && self.in_hp(t.id, id))
            .map(|t| t.id)
            .collect()
    }

    /// The set `lp(τ)` of same-ECU tasks with less urgent priority.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn lp_tasks(&self, id: TaskId) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| t.id != id && self.in_hp(id, t.id))
            .map(|t| t.id)
            .collect()
    }

    /// The hyperperiod (LCM of all task periods), if representable.
    #[must_use]
    pub fn hyperperiod(&self) -> Option<Duration> {
        hyperperiod(self.tasks.iter().map(|t| t.period))
    }

    /// Replaces the release offset of a task.
    ///
    /// Offsets do not participate in any structural invariant (the
    /// analysis is offset-oblivious; only the simulator reads them), so
    /// this is the second permitted in-place mutation. The paper's
    /// evaluation re-randomizes offsets between simulation runs.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] for a foreign id and
    /// [`ModelError::NegativeOffset`] for a negative offset.
    pub fn set_task_offset(&mut self, id: TaskId, offset: Duration) -> Result<(), ModelError> {
        if offset.is_negative() {
            return Err(ModelError::NegativeOffset {
                task: id,
                offset_nanos: offset.as_nanos(),
            });
        }
        let task = self
            .tasks
            .get_mut(id.index())
            .ok_or(ModelError::UnknownTask(id))?;
        task.offset = offset;
        Ok(())
    }

    /// Replaces the worst-case execution time of a task (the sensitivity-
    /// analysis knob).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] for a foreign id and
    /// [`ModelError::ExecutionTimeOrder`] if `wcet` would fall below the
    /// task's BCET (or be negative).
    pub fn set_task_wcet(&mut self, id: TaskId, wcet: Duration) -> Result<(), ModelError> {
        let task = self
            .tasks
            .get_mut(id.index())
            .ok_or(ModelError::UnknownTask(id))?;
        if wcet.is_negative() {
            return Err(ModelError::NegativeExecutionTime { task: id });
        }
        if wcet < task.bcet {
            return Err(ModelError::ExecutionTimeOrder {
                task: id,
                bcet_nanos: task.bcet.as_nanos(),
                wcet_nanos: wcet.as_nanos(),
            });
        }
        task.wcet = wcet;
        Ok(())
    }

    /// Replaces the best-case execution time of a task.
    ///
    /// BCET does not participate in priority assignment or response-time
    /// analysis (only hop and backward bounds read it), so like
    /// [`Self::set_task_wcet`] this is a permitted in-place mutation —
    /// the incremental re-analysis engine's cheapest edit.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownTask`] for a foreign id and
    /// [`ModelError::ExecutionTimeOrder`] if `bcet` would exceed the
    /// task's WCET (or be negative).
    pub fn set_task_bcet(&mut self, id: TaskId, bcet: Duration) -> Result<(), ModelError> {
        let task = self
            .tasks
            .get_mut(id.index())
            .ok_or(ModelError::UnknownTask(id))?;
        if bcet.is_negative() {
            return Err(ModelError::NegativeExecutionTime { task: id });
        }
        if bcet > task.wcet {
            return Err(ModelError::ExecutionTimeOrder {
                task: id,
                bcet_nanos: bcet.as_nanos(),
                wcet_nanos: task.wcet.as_nanos(),
            });
        }
        task.bcet = bcet;
        Ok(())
    }

    /// Resizes the buffer of a channel (the §IV optimization knob).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownChannel`] for a foreign id and
    /// [`ModelError::ZeroCapacity`] when `capacity` is zero.
    pub fn set_channel_capacity(
        &mut self,
        id: ChannelId,
        capacity: usize,
    ) -> Result<(), ModelError> {
        let ch = self
            .channels
            .get_mut(id.index())
            .ok_or(ModelError::UnknownChannel(id))?;
        if capacity == 0 {
            return Err(ModelError::ZeroCapacity {
                src: ch.src,
                dst: ch.dst,
            });
        }
        ch.capacity = capacity;
        Ok(())
    }

    /// Enumerates the set `P`: every chain that starts at a source task of
    /// `G` and ends at `task`.
    ///
    /// A backward depth-first search; the result is deterministic
    /// (lexicographic by predecessor id). If `task` is itself a source the
    /// single-task chain `{task}` is returned.
    ///
    /// # Errors
    ///
    /// * [`ModelError::UnknownTask`] for a foreign id.
    /// * [`ModelError::ChainLimitExceeded`] if more than `limit` chains
    ///   exist — random DAGs can hold exponentially many paths, so callers
    ///   must pick an explicit budget.
    ///
    /// # Examples
    ///
    /// ```
    /// use disparity_model::builder::SystemBuilder;
    /// use disparity_model::task::TaskSpec;
    /// use disparity_model::time::Duration;
    ///
    /// // diamond: s -> a -> t, s -> b -> t
    /// let mut b = SystemBuilder::new();
    /// let ecu = b.add_ecu("e");
    /// let mk = |n: &str| TaskSpec::periodic(n, Duration::from_millis(10));
    /// let s = b.add_task(mk("s"));
    /// let a = b.add_task(mk("a").wcet(Duration::from_millis(1)).on_ecu(ecu));
    /// let b2 = b.add_task(mk("b").wcet(Duration::from_millis(1)).on_ecu(ecu));
    /// let t = b.add_task(mk("t").wcet(Duration::from_millis(1)).on_ecu(ecu));
    /// b.connect(s, a);
    /// b.connect(s, b2);
    /// b.connect(a, t);
    /// b.connect(b2, t);
    /// let g = b.build()?;
    /// let chains = g.chains_to(t, 100)?;
    /// assert_eq!(chains.len(), 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn chains_to(&self, task: TaskId, limit: usize) -> Result<Vec<Chain>, ModelError> {
        if self.get_task(task).is_none() {
            return Err(ModelError::UnknownTask(task));
        }
        let mut chains = Vec::new();
        let mut stack = vec![task];
        self.chains_to_rec(task, limit, &mut stack, &mut chains)?;
        Ok(chains)
    }

    fn chains_to_rec(
        &self,
        current: TaskId,
        limit: usize,
        stack: &mut Vec<TaskId>,
        chains: &mut Vec<Chain>,
    ) -> Result<(), ModelError> {
        if self.is_source(current) {
            if chains.len() >= limit {
                return Err(ModelError::ChainLimitExceeded {
                    task: *stack.first().unwrap_or(&current),
                    limit,
                });
            }
            let mut tasks: Vec<TaskId> = stack.clone();
            tasks.reverse();
            chains.push(Chain::new_unchecked(tasks));
            return Ok(());
        }
        let mut preds: Vec<TaskId> = self.predecessors(current).collect();
        preds.sort_unstable();
        for p in preds {
            stack.push(p);
            self.chains_to_rec(p, limit, stack, chains)?;
            stack.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::SystemBuilder;
    use crate::error::ModelError;
    use crate::ids::Priority;
    use crate::task::TaskSpec;
    use crate::time::Duration;

    fn diamond() -> (CauseEffectGraphHandle, [crate::ids::TaskId; 4]) {
        let mut b = SystemBuilder::new();
        let ecu = b.add_ecu("e0");
        let ms = Duration::from_millis;
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(TaskSpec::periodic("a", ms(10)).wcet(ms(1)).on_ecu(ecu));
        let c = b.add_task(TaskSpec::periodic("c", ms(20)).wcet(ms(1)).on_ecu(ecu));
        let t = b.add_task(TaskSpec::periodic("t", ms(20)).wcet(ms(2)).on_ecu(ecu));
        b.connect(s, a);
        b.connect(s, c);
        b.connect(a, t);
        b.connect(c, t);
        (b.build().expect("valid diamond"), [s, a, c, t])
    }

    type CauseEffectGraphHandle = super::CauseEffectGraph;

    #[test]
    fn sources_and_sinks() {
        let (g, [s, _, _, t]) = diamond();
        assert_eq!(g.sources(), vec![s]);
        assert_eq!(g.sinks(), vec![t]);
        assert!(g.is_source(s));
        assert!(g.is_sink(t));
        assert!(!g.is_sink(s));
    }

    #[test]
    fn topological_order_respects_edges() {
        let (g, _) = diamond();
        let topo = g.topological_order();
        let pos = |t: crate::ids::TaskId| topo.iter().position(|&x| x == t).unwrap();
        for ch in g.channels() {
            assert!(
                pos(ch.src()) < pos(ch.dst()),
                "{} before {}",
                ch.src(),
                ch.dst()
            );
        }
    }

    #[test]
    fn hp_relation_uses_rate_monotonic_default() {
        let (g, [_, a, c, t]) = diamond();
        // a has period 10ms < 20ms, so it outranks c and t.
        assert!(g.in_hp(a, c));
        assert!(g.in_hp(a, t));
        assert!(!g.in_hp(c, a));
        assert!(g.hp_tasks(t).contains(&a));
        assert!(g.lp_tasks(a).contains(&t));
    }

    #[test]
    fn unmapped_tasks_share_no_ecu() {
        let (g, [s, a, _, _]) = diamond();
        assert!(!g.same_ecu(s, a));
        assert!(!g.in_hp(s, a));
    }

    #[test]
    fn chains_enumeration_on_diamond() {
        let (g, [s, a, c, t]) = diamond();
        let chains = g.chains_to(t, 16).unwrap();
        assert_eq!(chains.len(), 2);
        let paths: Vec<Vec<_>> = chains.iter().map(|c| c.tasks().to_vec()).collect();
        assert!(paths.contains(&vec![s, a, t]));
        assert!(paths.contains(&vec![s, c, t]));
    }

    #[test]
    fn chain_limit_is_enforced() {
        let (g, [_, _, _, t]) = diamond();
        assert_eq!(
            g.chains_to(t, 1).unwrap_err(),
            ModelError::ChainLimitExceeded { task: t, limit: 1 }
        );
    }

    #[test]
    fn chains_to_a_source_is_the_singleton_chain() {
        let (g, [s, _, _, _]) = diamond();
        let chains = g.chains_to(s, 4).unwrap();
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].tasks(), &[s]);
    }

    #[test]
    fn channel_between_finds_edges() {
        let (g, [s, a, _, t]) = diamond();
        assert!(g.channel_between(s, a).is_some());
        assert!(g.channel_between(a, s).is_none());
        assert!(g.channel_between(s, t).is_none());
    }

    #[test]
    fn set_channel_capacity_validates() {
        let (mut g, [s, a, _, _]) = diamond();
        let ch = g.channel_between(s, a).unwrap().id();
        g.set_channel_capacity(ch, 4).unwrap();
        assert_eq!(g.channel(ch).capacity(), 4);
        assert!(matches!(
            g.set_channel_capacity(ch, 0),
            Err(ModelError::ZeroCapacity { .. })
        ));
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let (g, _) = diamond();
        assert_eq!(g.hyperperiod(), Some(Duration::from_millis(20)));
    }

    #[test]
    fn explicit_priorities_override_rate_monotonic() {
        let mut b = SystemBuilder::new();
        let ecu = b.add_ecu("e0");
        let ms = Duration::from_millis;
        let slow = b.add_task(
            TaskSpec::periodic("slow", ms(100))
                .wcet(ms(1))
                .on_ecu(ecu)
                .priority(Priority::new(0)),
        );
        let fast = b.add_task(
            TaskSpec::periodic("fast", ms(1))
                .wcet(ms(1))
                .on_ecu(ecu)
                .priority(Priority::new(1)),
        );
        let g = b.build().unwrap();
        assert!(g.in_hp(slow, fast));
    }

    #[test]
    fn find_task_by_name() {
        let (g, [s, ..]) = diamond();
        assert_eq!(g.find_task("s"), Some(s));
        assert_eq!(g.find_task("nope"), None);
    }
}
