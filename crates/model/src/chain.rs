//! Cause-effect chains: paths through the graph.
//!
//! A chain `π = {π¹, π², …}` is a path in `G`; the analysis of §III
//! decomposes *pairs* of chains at their common tasks, so this module also
//! provides common-task extraction, sub-chain splitting (the `α_i`/`β_i`
//! decomposition of Theorem 2) and longest-common-suffix truncation ("the
//! last joint task" simplification).

use core::fmt;


use crate::error::ModelError;
use crate::graph::CauseEffectGraph;
use crate::ids::TaskId;

/// A non-empty path of tasks through a cause-effect graph.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::chain::Chain;
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s = b.add_task(TaskSpec::periodic("s", ms(10)));
/// let t = b.add_task(TaskSpec::periodic("t", ms(10)).wcet(ms(1)).on_ecu(ecu));
/// b.connect(s, t);
/// let g = b.build()?;
/// let chain = Chain::new(&g, vec![s, t])?;
/// assert_eq!(chain.head(), s);
/// assert_eq!(chain.tail(), t);
/// assert_eq!(chain.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Chain {
    tasks: Vec<TaskId>,
}

impl Chain {
    /// Creates a chain after checking that every consecutive pair is an
    /// edge of `graph`.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyChain`] if `tasks` is empty.
    /// * [`ModelError::UnknownTask`] if a task is foreign to the graph.
    /// * [`ModelError::NotAChain`] if some consecutive pair is not an edge.
    pub fn new(graph: &CauseEffectGraph, tasks: Vec<TaskId>) -> Result<Self, ModelError> {
        if tasks.is_empty() {
            return Err(ModelError::EmptyChain);
        }
        for &t in &tasks {
            if graph.get_task(t).is_none() {
                return Err(ModelError::UnknownTask(t));
            }
        }
        for w in tasks.windows(2) {
            if graph.channel_between(w[0], w[1]).is_none() {
                return Err(ModelError::NotAChain {
                    from: w[0],
                    to: w[1],
                });
            }
        }
        Ok(Chain { tasks })
    }

    /// Internal constructor for chains produced by graph traversal, which
    /// are paths by construction.
    pub(crate) fn new_unchecked(tasks: Vec<TaskId>) -> Self {
        debug_assert!(!tasks.is_empty());
        Chain { tasks }
    }

    /// The head task `π¹`.
    #[must_use]
    pub fn head(&self) -> TaskId {
        self.tasks[0]
    }

    /// The tail task `π^{|π|}`.
    #[must_use]
    pub fn tail(&self) -> TaskId {
        match self.tasks.last() {
            Some(&t) => t,
            None => unreachable!("chains are non-empty"),
        }
    }

    /// Number of tasks `|π|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `false` — chains are never empty; provided for clippy-friendliness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if the chain consists of a single task.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.tasks.len() == 1
    }

    /// The tasks of the chain in order.
    #[must_use]
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// The `i`-th task (0-based; the paper's `π^{i+1}`).
    #[must_use]
    pub fn get(&self, i: usize) -> Option<TaskId> {
        self.tasks.get(i).copied()
    }

    /// Position of `task` in the chain, if present.
    #[must_use]
    pub fn position(&self, task: TaskId) -> Option<usize> {
        self.tasks.iter().position(|&t| t == task)
    }

    /// `true` if the chain visits `task`.
    #[must_use]
    pub fn contains(&self, task: TaskId) -> bool {
        self.tasks.contains(&task)
    }

    /// Iterates over the consecutive `(predecessor, successor)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId)> + '_ {
        self.tasks.windows(2).map(|w| (w[0], w[1]))
    }

    /// The sub-chain spanning positions `start..=end` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end` is out of range.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> Chain {
        Chain {
            tasks: self.tasks[start..=end].to_vec(),
        }
    }

    /// Tasks common to `self` and `other` **excluding graph source tasks**,
    /// in chain order — the `{o_1, …, o_c}` of Theorem 2.
    ///
    /// Both chains visit common tasks in the same relative order (the graph
    /// is acyclic), so the order is well defined.
    #[must_use]
    pub fn common_tasks(&self, other: &Chain, graph: &CauseEffectGraph) -> Vec<TaskId> {
        self.tasks
            .iter()
            .copied()
            .filter(|&t| other.contains(t) && !graph.is_source(t))
            .collect()
    }

    /// Splits the chain at the given cut tasks into the sub-chains
    /// `α_1, …, α_c` of Theorem 2: `α_1` runs from the head to `cuts[0]`,
    /// and `α_i` from `cuts[i-2]` to `cuts[i-1]`. Every cut task appears as
    /// both the tail of one sub-chain and the head of the next.
    ///
    /// # Panics
    ///
    /// Panics if `cuts` is empty, contains a task not on the chain, or is
    /// not in ascending chain order.
    #[must_use]
    pub fn split_at(&self, cuts: &[TaskId]) -> Vec<Chain> {
        assert!(!cuts.is_empty(), "need at least one cut task");
        let mut out = Vec::with_capacity(cuts.len());
        let mut start = 0usize;
        for &cut in cuts {
            let Some(end) = self.position(cut) else {
                unreachable!("cut task must be on the chain")
            };
            assert!(end >= start, "cut tasks must be in chain order");
            out.push(self.slice(start, end));
            start = end;
        }
        out
    }

    /// Length (in tasks) of the longest common suffix of the two chains.
    #[must_use]
    pub fn common_suffix_len(&self, other: &Chain) -> usize {
        self.tasks
            .iter()
            .rev()
            .zip(other.tasks.iter().rev())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// Truncates both chains at the *last joint task*: the first task of
    /// their longest common suffix. Per §III, the immediate backward job
    /// chain on a shared suffix is unique, so the disparity of the original
    /// tails equals the disparity at the last joint task.
    ///
    /// Returns `None` when the chains share no suffix (different tails) —
    /// then no truncation applies and the caller should use the chains as
    /// they are.
    #[must_use]
    pub fn truncate_to_last_joint(&self, other: &Chain) -> Option<(Chain, Chain)> {
        let k = self.common_suffix_len(other);
        if k == 0 {
            return None;
        }
        let a_end = self.len() - k;
        let b_end = other.len() - k;
        Some((self.slice(0, a_end), other.slice(0, b_end)))
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.tasks {
            if !first {
                write!(f, " -> ")?;
            }
            write!(f, "{t}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::task::TaskSpec;
    use crate::time::Duration;

    /// The paper's Fig. 2 graph:
    /// τ1 -> τ3 -> {τ4, τ5} -> τ6, τ2 -> τ3.
    fn fig2() -> (CauseEffectGraph, [TaskId; 6]) {
        let mut b = SystemBuilder::new();
        let e1 = b.add_ecu("ecu1");
        let e2 = b.add_ecu("ecu2");
        let ms = Duration::from_millis;
        let t1 = b.add_task(TaskSpec::periodic("t1", ms(10)));
        let t2 = b.add_task(TaskSpec::periodic("t2", ms(20)));
        let t3 = b.add_task(
            TaskSpec::periodic("t3", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e1),
        );
        let t4 = b.add_task(
            TaskSpec::periodic("t4", ms(20))
                .execution(ms(2), ms(4))
                .on_ecu(e1),
        );
        let t5 = b.add_task(
            TaskSpec::periodic("t5", ms(30))
                .execution(ms(2), ms(5))
                .on_ecu(e2),
        );
        let t6 = b.add_task(
            TaskSpec::periodic("t6", ms(30))
                .execution(ms(3), ms(6))
                .on_ecu(e2),
        );
        b.connect(t1, t3);
        b.connect(t2, t3);
        b.connect(t3, t4);
        b.connect(t3, t5);
        b.connect(t4, t6);
        b.connect(t5, t6);
        (b.build().unwrap(), [t1, t2, t3, t4, t5, t6])
    }

    #[test]
    fn validated_construction() {
        let (g, [t1, _, t3, _, t5, t6]) = fig2();
        let c = Chain::new(&g, vec![t1, t3, t5, t6]).unwrap();
        assert_eq!(c.head(), t1);
        assert_eq!(c.tail(), t6);
        assert_eq!(c.len(), 4);
        assert!(!c.is_trivial());
    }

    #[test]
    fn non_path_is_rejected() {
        let (g, [t1, _, _, _, t5, _]) = fig2();
        assert_eq!(
            Chain::new(&g, vec![t1, t5]).unwrap_err(),
            ModelError::NotAChain { from: t1, to: t5 }
        );
        assert_eq!(Chain::new(&g, vec![]).unwrap_err(), ModelError::EmptyChain);
    }

    #[test]
    fn common_tasks_excludes_sources() {
        let (g, [t1, t2, t3, t4, t5, t6]) = fig2();
        let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
        // Paper example (§III): common tasks are τ3 and τ6.
        assert_eq!(lam.common_tasks(&nu, &g), vec![t3, t6]);

        let nu_same_head = Chain::new(&g, vec![t1, t3, t5, t6]).unwrap();
        // τ1 is a source, hence excluded even though shared.
        assert_eq!(lam.common_tasks(&nu_same_head, &g), vec![t3, t6]);
    }

    #[test]
    fn split_matches_paper_example() {
        let (g, [t1, t2, t3, t4, t5, t6]) = fig2();
        let lam = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        let nu = Chain::new(&g, vec![t2, t3, t5, t6]).unwrap();
        let cuts = lam.common_tasks(&nu, &g);
        let alphas = lam.split_at(&cuts);
        let betas = nu.split_at(&cuts);
        // Paper: {τ1,τ3}, {τ3,τ4,τ6} and {τ2,τ3}, {τ3,τ5,τ6}.
        assert_eq!(alphas.len(), 2);
        assert_eq!(alphas[0].tasks(), &[t1, t3]);
        assert_eq!(alphas[1].tasks(), &[t3, t4, t6]);
        assert_eq!(betas[0].tasks(), &[t2, t3]);
        assert_eq!(betas[1].tasks(), &[t3, t5, t6]);
    }

    #[test]
    fn suffix_truncation_finds_last_joint() {
        let (g, [t1, t2, t3, t4, t5, t6]) = fig2();
        // The chains differ only in their source: the suffixes coincide
        // from τ3 onwards, so the last joint task is τ3.
        let a = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        let b = Chain::new(&g, vec![t2, t3, t4, t6]).unwrap();
        assert_eq!(a.common_suffix_len(&b), 3); // {t3, t4, t6}
        let (ta, tb) = a.truncate_to_last_joint(&b).unwrap();
        assert_eq!(ta.tasks(), &[t1, t3]);
        assert_eq!(tb.tasks(), &[t2, t3]);

        let c = Chain::new(&g, vec![t1, t3, t5, t6]).unwrap();
        let (ta, tc) = a.truncate_to_last_joint(&c).unwrap();
        assert_eq!(ta.tail(), t6);
        assert_eq!(tc.tail(), t6);
        assert_eq!(ta.tasks(), &[t1, t3, t4, t6]);
    }

    #[test]
    fn disjoint_tails_do_not_truncate() {
        let (g, [t1, _, t3, t4, t5, _]) = fig2();
        let a = Chain::new(&g, vec![t1, t3, t4]).unwrap();
        let b = Chain::new(&g, vec![t1, t3, t5]).unwrap();
        assert_eq!(a.common_suffix_len(&b), 0);
        assert!(a.truncate_to_last_joint(&b).is_none());
    }

    #[test]
    fn display_renders_arrows() {
        let (g, [t1, _, t3, _, _, _]) = fig2();
        let c = Chain::new(&g, vec![t1, t3]).unwrap();
        assert_eq!(c.to_string(), format!("{t1} -> {t3}"));
    }

    #[test]
    fn edges_iterates_pairs() {
        let (g, [t1, _, t3, t4, _, t6]) = fig2();
        let c = Chain::new(&g, vec![t1, t3, t4, t6]).unwrap();
        let e: Vec<_> = c.edges().collect();
        assert_eq!(e, vec![(t1, t3), (t3, t4), (t4, t6)]);
    }
}
