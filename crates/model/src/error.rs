//! Error types for model construction and chain queries.

use core::fmt;

use crate::ids::{ChannelId, EcuId, Priority, TaskId};

/// Errors produced while building or querying a cause-effect graph.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::error::ModelError;
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("ecu");
/// let spec = TaskSpec::periodic("t", Duration::from_millis(10))
///     .wcet(Duration::from_millis(2))
///     .bcet(Duration::from_millis(3)) // BCET > WCET: invalid
///     .on_ecu(ecu);
/// let t = b.add_task(spec);
/// let err = b.build().unwrap_err();
/// assert!(matches!(err, ModelError::ExecutionTimeOrder { task, .. } if task == t));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The graph contains a directed cycle, so it is not a DAG.
    CycleDetected,
    /// A referenced task id does not exist in the graph.
    UnknownTask(TaskId),
    /// A referenced ECU id does not exist in the graph.
    UnknownEcu(EcuId),
    /// A referenced channel id does not exist in the graph.
    UnknownChannel(ChannelId),
    /// An edge connects a task to itself.
    SelfLoop(TaskId),
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Producing task of the duplicated edge.
        src: TaskId,
        /// Consuming task of the duplicated edge.
        dst: TaskId,
    },
    /// A task's BCET exceeds its WCET.
    ExecutionTimeOrder {
        /// The offending task.
        task: TaskId,
        /// Its declared BCET in nanoseconds.
        bcet_nanos: i64,
        /// Its declared WCET in nanoseconds.
        wcet_nanos: i64,
    },
    /// A task's period is not strictly positive.
    NonPositivePeriod {
        /// The offending task.
        task: TaskId,
        /// Its declared period in nanoseconds.
        period_nanos: i64,
    },
    /// A task's release offset is negative.
    NegativeOffset {
        /// The offending task.
        task: TaskId,
        /// Its declared offset in nanoseconds.
        offset_nanos: i64,
    },
    /// A task's WCET or BCET is negative.
    NegativeExecutionTime {
        /// The offending task.
        task: TaskId,
    },
    /// A task with non-zero execution cost has no ECU mapping.
    UnmappedTask(TaskId),
    /// Two tasks on the same ECU share a priority level.
    DuplicatePriority {
        /// The ECU on which the clash occurs.
        ecu: EcuId,
        /// First task claiming the level.
        a: TaskId,
        /// Second task claiming the level.
        b: TaskId,
        /// The contested priority level.
        priority: Priority,
    },
    /// A channel buffer capacity of zero was requested.
    ZeroCapacity {
        /// Producing task of the channel.
        src: TaskId,
        /// Consuming task of the channel.
        dst: TaskId,
    },
    /// The given task sequence is not a path in the graph.
    NotAChain {
        /// Task at which the path breaks.
        from: TaskId,
        /// Task that is not a successor of `from`.
        to: TaskId,
    },
    /// A chain must contain at least one task.
    EmptyChain,
    /// Chain enumeration exceeded the configured limit.
    ChainLimitExceeded {
        /// The task whose incoming chains were being enumerated.
        task: TaskId,
        /// The configured enumeration budget.
        limit: usize,
    },
    /// The graph has no tasks.
    EmptyGraph,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::CycleDetected => write!(f, "cause-effect graph contains a cycle"),
            ModelError::UnknownTask(t) => write!(f, "unknown task {t}"),
            ModelError::UnknownEcu(e) => write!(f, "unknown ecu {e}"),
            ModelError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            ModelError::SelfLoop(t) => write!(f, "self-loop on {t}"),
            ModelError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            ModelError::ExecutionTimeOrder {
                task,
                bcet_nanos,
                wcet_nanos,
            } => write!(
                f,
                "{task} has BCET {bcet_nanos}ns greater than WCET {wcet_nanos}ns"
            ),
            ModelError::NonPositivePeriod { task, period_nanos } => {
                write!(f, "{task} has non-positive period {period_nanos}ns")
            }
            ModelError::NegativeOffset { task, offset_nanos } => {
                write!(f, "{task} has negative release offset {offset_nanos}ns")
            }
            ModelError::NegativeExecutionTime { task } => {
                write!(f, "{task} has a negative execution time")
            }
            ModelError::UnmappedTask(t) => {
                write!(f, "{t} has non-zero execution cost but no ecu mapping")
            }
            ModelError::DuplicatePriority {
                ecu,
                a,
                b,
                priority,
            } => {
                write!(f, "{a} and {b} on {ecu} share priority {priority}")
            }
            ModelError::ZeroCapacity { src, dst } => {
                write!(f, "channel {src} -> {dst} requested with zero capacity")
            }
            ModelError::NotAChain { from, to } => {
                write!(f, "no edge {from} -> {to}: task sequence is not a chain")
            }
            ModelError::EmptyChain => write!(f, "a chain must contain at least one task"),
            ModelError::ChainLimitExceeded { task, limit } => {
                write!(f, "more than {limit} chains end at {task}")
            }
            ModelError::EmptyGraph => write!(f, "graph contains no tasks"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let samples: Vec<ModelError> = vec![
            ModelError::CycleDetected,
            ModelError::UnknownTask(TaskId::from_index(1)),
            ModelError::UnknownEcu(EcuId::from_index(1)),
            ModelError::UnknownChannel(ChannelId::from_index(1)),
            ModelError::SelfLoop(TaskId::from_index(0)),
            ModelError::DuplicateEdge {
                src: TaskId::from_index(0),
                dst: TaskId::from_index(1),
            },
            ModelError::ExecutionTimeOrder {
                task: TaskId::from_index(0),
                bcet_nanos: 2,
                wcet_nanos: 1,
            },
            ModelError::NonPositivePeriod {
                task: TaskId::from_index(0),
                period_nanos: 0,
            },
            ModelError::NegativeOffset {
                task: TaskId::from_index(0),
                offset_nanos: -1,
            },
            ModelError::NegativeExecutionTime {
                task: TaskId::from_index(0),
            },
            ModelError::UnmappedTask(TaskId::from_index(0)),
            ModelError::DuplicatePriority {
                ecu: EcuId::from_index(0),
                a: TaskId::from_index(0),
                b: TaskId::from_index(1),
                priority: Priority::new(3),
            },
            ModelError::ZeroCapacity {
                src: TaskId::from_index(0),
                dst: TaskId::from_index(1),
            },
            ModelError::NotAChain {
                from: TaskId::from_index(0),
                to: TaskId::from_index(1),
            },
            ModelError::EmptyChain,
            ModelError::ChainLimitExceeded {
                task: TaskId::from_index(0),
                limit: 10,
            },
            ModelError::EmptyGraph,
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
