//! Channels: the edges of a cause-effect graph.
//!
//! An edge `(τ_i, τ_j)` is a communication buffer from `τ_i` to `τ_j`.
//! In the paper's base model (§II) every channel is a register of size 1
//! with overwrite semantics; §IV generalizes the *input channel* of a
//! chain's second task to a FIFO of capacity `n ≥ 1`:
//!
//! * a writer **enqueues** its token; when the buffer is already full the
//!   **oldest** token is evicted first;
//! * a reader **peeks** the oldest token without consuming it.
//!
//! Capacity 1 reproduces exactly the register semantics, so a single type
//! covers both.


use crate::ids::{ChannelId, TaskId};

/// A validated channel inside a graph.
///
/// # Examples
///
/// ```
/// use disparity_model::builder::SystemBuilder;
/// use disparity_model::task::TaskSpec;
/// use disparity_model::time::Duration;
///
/// let mut b = SystemBuilder::new();
/// let src = b.add_task(TaskSpec::periodic("s", Duration::from_millis(10)));
/// let dst = b.add_task(TaskSpec::periodic("d", Duration::from_millis(10)));
/// let ch = b.connect(src, dst);
/// let g = b.build()?;
/// assert_eq!(g.channel(ch).capacity(), 1); // register by default
/// assert_eq!(g.channel(ch).src(), src);
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    pub(crate) id: ChannelId,
    pub(crate) src: TaskId,
    pub(crate) dst: TaskId,
    pub(crate) capacity: usize,
}

impl Channel {
    /// The channel identifier.
    #[must_use]
    pub fn id(&self) -> ChannelId {
        self.id
    }

    /// The producing task.
    #[must_use]
    pub fn src(&self) -> TaskId {
        self.src
    }

    /// The consuming task.
    #[must_use]
    pub fn dst(&self) -> TaskId {
        self.dst
    }

    /// FIFO capacity; `1` is the paper's size-1 register.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` if the channel behaves as the base model's overwrite register.
    #[must_use]
    pub fn is_register(&self) -> bool {
        self.capacity == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_detection() {
        let c = Channel {
            id: ChannelId::from_index(0),
            src: TaskId::from_index(0),
            dst: TaskId::from_index(1),
            capacity: 1,
        };
        assert!(c.is_register());
        let c2 = Channel { capacity: 3, ..c };
        assert!(!c2.is_register());
        assert_eq!(c2.capacity(), 3);
    }
}
