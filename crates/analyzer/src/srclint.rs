//! Layer 2: the in-tree source lint.
//!
//! A deliberately lightweight line/token scanner (no parser, no external
//! deps) that walks `crates/*/src` and denies patterns the workspace bans
//! in library code:
//!
//! * **`panic`** — `.unwrap()` / `.expect(` / `panic!(` / `todo!(` /
//!   `unimplemented!(` outside `#[cfg(test)]` blocks and `src/bin/`
//!   binaries. Library code must return typed errors.
//! * **`time-cast`** — `as i64` / `as u64` on lines that also mention time
//!   quantities (`period`, `wcet`, `nanos`, …). Time arithmetic must go
//!   through the checked `Duration`/`Instant` ops.
//! * **`wall-clock`** — `Instant::now` / `SystemTime` inside the
//!   deterministic crates (model, sched, core, sim, workload, rng,
//!   analyzer). Determinism is a correctness property here; only obs,
//!   bench, and the experiment binaries may read real time.
//! * **`catch-unwind`** — `catch_unwind` in library code. Swallowing
//!   panics hides bugs; the one sanctioned site is the service's
//!   per-request isolation boundary, which re-surfaces the payload as a
//!   structured `internal_error` and feeds the quarantine ledger. Any
//!   new site needs the same story and an allowlist entry.
//! * **`atomic-ordering`** — `Ordering::Relaxed` / `Ordering::SeqCst` in
//!   library code. Both ends of the spectrum demand a written argument:
//!   Relaxed because it drops synchronization, SeqCst because it usually
//!   papers over not knowing which edge is needed. A site is exempt when
//!   the line (or the comment line directly above it) carries a
//!   `// conc:` justification — ideally citing the model-checking harness
//!   that explores the protocol — or when the file has an allowlist
//!   entry. `#[cfg(feature = "model")]` blocks are skipped like
//!   `#[cfg(test)]`: they are checker-facing instrumentation, not
//!   shipping code.
//! * **`hot-path`** — lock acquisition (`Mutex`/`RwLock`/`.lock(`) and
//!   heap-allocating calls (`Box::new`, `Vec::new`, `vec![`, `format!`,
//!   `.to_string(`, …) inside regions bracketed by the comment markers
//!   `// srclint: hot-path-begin` and `// srclint: hot-path-end`. The
//!   flight recorder's wait-free record path declares such a region: its
//!   "never locks, never allocates" guarantee is load-bearing (a worker
//!   records mid-request) and this rule keeps it honest.
//!
//! Justified exceptions live in a committed allowlist file
//! ([`Allowlist::parse`]); every entry must carry a written reason.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The lint rules the scanner knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Panicking constructs in library code.
    Panic,
    /// Unchecked integer casts adjacent to time arithmetic.
    TimeCast,
    /// Wall-clock reads in deterministic crates.
    WallClock,
    /// Panic-swallowing `catch_unwind` boundaries in library code.
    CatchUnwind,
    /// Locks or heap allocation inside a declared hot-path region.
    HotPath,
    /// Unjustified `Ordering::Relaxed` / `Ordering::SeqCst` in library code.
    AtomicOrdering,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 6] = [
        Rule::Panic,
        Rule::TimeCast,
        Rule::WallClock,
        Rule::CatchUnwind,
        Rule::HotPath,
        Rule::AtomicOrdering,
    ];

    /// The stable rule name used in reports and allowlist entries.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::TimeCast => "time-cast",
            Rule::WallClock => "wall-clock",
            Rule::CatchUnwind => "catch-unwind",
            Rule::HotPath => "hot-path",
            Rule::AtomicOrdering => "atomic-ordering",
        }
    }

    /// Parses a rule name as written in an allowlist entry.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.as_str() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One banned-pattern occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the scan root, with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.snippet
        )
    }
}

/// One committed exception: a `(path, rule)` pair with a mandatory reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Path relative to the scan root.
    pub path: String,
    /// The rule this entry silences in that file.
    pub rule: Rule,
    /// Why the exception is justified (required).
    pub reason: String,
}

/// The parsed allowlist file.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist format: one `path rule # reason` entry per
    /// line; blank lines and lines starting with `#` are comments.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line when an entry is
    /// malformed, names an unknown rule, or omits its reason.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            let (entry, reason) = line
                .split_once('#')
                .ok_or_else(|| format!("allowlist line {lineno}: missing `# reason`"))?;
            let reason = reason.trim();
            if reason.is_empty() {
                return Err(format!("allowlist line {lineno}: empty reason"));
            }
            let mut parts = entry.split_whitespace();
            let (Some(path), Some(rule_name), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "allowlist line {lineno}: expected `path rule # reason`"
                ));
            };
            let rule = Rule::from_str_opt(rule_name).ok_or_else(|| {
                format!("allowlist line {lineno}: unknown rule '{rule_name}'")
            })?;
            entries.push(AllowEntry {
                path: path.to_string(),
                rule,
                reason: reason.to_string(),
            });
        }
        Ok(Allowlist { entries })
    }

    /// The parsed entries.
    #[must_use]
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }

    fn covers(&self, finding: &Finding) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == finding.rule && e.path == finding.path)
    }
}

/// The outcome of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Findings not covered by the allowlist — these fail the gate.
    pub denied: Vec<Finding>,
    /// Findings silenced by an allowlist entry.
    pub allowed: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale; worth pruning).
    pub unused_allow: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the gate passes.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.denied.is_empty()
    }
}

/// Crates whose `src` trees must stay wall-clock free.
const DETERMINISTIC_CRATES: [&str; 8] = [
    "model",
    "sched",
    "core",
    "sim",
    "workload",
    "rng",
    "analyzer",
    "opt",
];

// The scanner's own pattern table is assembled from split literals so that
// scanning this file does not flag the table itself.
fn panic_patterns() -> [String; 5] {
    [
        [".unw", "rap()"].concat(),
        [".exp", "ect("].concat(),
        ["pan", "ic!("].concat(),
        ["to", "do!("].concat(),
        ["unimple", "mented!("].concat(),
    ]
}

fn cast_patterns() -> [String; 2] {
    [["as i6", "4"].concat(), ["as u6", "4"].concat()]
}

fn wall_clock_patterns() -> [String; 2] {
    [["Instant::", "now"].concat(), ["System", "Time"].concat()]
}

fn unwind_catch_patterns() -> [String; 1] {
    [["catch_un", "wind"].concat()]
}

/// Locking and allocating constructs banned between hot-path markers.
/// Coarse on purpose: a hot-path region is a handful of lines, and a
/// false positive there is a prompt to justify the call in review, not
/// a nuisance.
fn hot_path_patterns() -> [String; 13] {
    [
        [".lo", "ck("].concat(),
        ["Mut", "ex"].concat(),
        ["RwL", "ock"].concat(),
        ["Box::", "new"].concat(),
        ["Vec::", "new"].concat(),
        ["ve", "c!["].concat(),
        ["for", "mat!("].concat(),
        [".to_st", "ring("].concat(),
        [".to_ow", "ned("].concat(),
        ["Str", "ing::"].concat(),
        [".clo", "ne("].concat(),
        [".coll", "ect("].concat(),
        [".pu", "sh("].concat(),
    ]
}

/// Comment markers opening/closing a hot-path region. Assembled from
/// split literals so the scanner never sees its own markers as a region.
fn hot_path_markers() -> (String, String) {
    (
        ["// srclint: hot-path-", "begin"].concat(),
        ["// srclint: hot-path-", "end"].concat(),
    )
}

/// The two orderings that demand a written argument: Relaxed drops
/// synchronization, SeqCst usually papers over not knowing which edge is
/// needed. Acquire/Release/AcqRel name their edge and pass freely.
fn ordering_patterns() -> [String; 2] {
    [
        ["Ordering::Rel", "axed"].concat(),
        ["Ordering::Seq", "Cst"].concat(),
    ]
}

/// The justification marker exempting an atomic-ordering site: on the
/// flagged line itself or on the comment line directly above it.
fn conc_marker() -> String {
    ["// co", "nc:"].concat()
}

/// The attribute gating model-checker instrumentation; blocks under it
/// are skipped like `#[cfg(test)]` blocks.
fn model_cfg_attr() -> String {
    ["#[cfg(feature = \"mo", "del\")]"].concat()
}

const TIME_MARKERS: [&str; 7] = [
    "_ns", "nanos", "period", "duration", "instant", "wcet", "bcet",
];

/// Scans one source file's text. `rel_path` is the forward-slash path
/// relative to the scan root; it selects which rules apply (wall-clock only
/// fires inside the deterministic crates).
///
/// Lines inside `#[cfg(test)]`-gated blocks and comment lines are skipped;
/// trailing `//` comments are stripped before matching. Hot-path marker
/// comments are recognized *before* the comment skip, since the markers
/// are themselves comment lines.
#[must_use]
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let panic_pats = panic_patterns();
    let cast_pats = cast_patterns();
    let clock_pats = wall_clock_patterns();
    let unwind_pats = unwind_catch_patterns();
    let hot_pats = hot_path_patterns();
    let (hot_begin, hot_end) = hot_path_markers();
    let ordering_pats = ordering_patterns();
    let conc = conc_marker();
    let model_cfg = model_cfg_attr();
    let deterministic = crate_of(rel_path)
        .map(|name| DETERMINISTIC_CRATES.contains(&name))
        .unwrap_or(false);

    let mut findings = Vec::new();
    let mut depth: i64 = 0;
    // Depth at which the innermost skipped (#[cfg(test)] or
    // #[cfg(feature = "model")]) block was entered.
    let mut test_entry: Option<i64> = None;
    let mut pending_cfg_test = false;
    let mut hot_path = false;
    // A `// conc:` comment line exempts the next code line from the
    // atomic-ordering rule.
    let mut pending_conc = false;

    for (idx, raw) in text.lines().enumerate() {
        let trimmed = raw.trim();
        // Markers may carry trailing prose ("— wait-free, no locks").
        if trimmed.starts_with(&*hot_begin) {
            hot_path = true;
            continue;
        }
        if trimmed.starts_with(&*hot_end) {
            hot_path = false;
            continue;
        }
        if trimmed.starts_with("//") {
            if trimmed.contains(&*conc) {
                pending_conc = true;
            }
            continue;
        }
        let blanked = blank_literals(raw);
        let code = strip_line_comment(&blanked);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        if let Some(entry) = test_entry {
            depth += opens - closes;
            if depth <= entry {
                test_entry = None;
            }
            continue;
        }

        if trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with(&*model_cfg) {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") {
                // Further attributes on the same gated item.
                depth += opens - closes;
                continue;
            }
            pending_cfg_test = false;
            if opens > 0 {
                let entry = depth;
                depth += opens - closes;
                if depth > entry {
                    test_entry = Some(entry);
                }
            }
            continue;
        }

        let mut check = |rule: Rule, hit: bool| {
            if hit {
                findings.push(Finding {
                    path: rel_path.to_string(),
                    line: idx + 1,
                    rule,
                    snippet: trimmed.to_string(),
                });
            }
        };
        check(Rule::Panic, panic_pats.iter().any(|p| code.contains(&**p)));
        let lower = code.to_ascii_lowercase();
        check(
            Rule::TimeCast,
            cast_pats.iter().any(|p| code.contains(&**p))
                && TIME_MARKERS.iter().any(|m| lower.contains(m)),
        );
        if deterministic {
            check(
                Rule::WallClock,
                clock_pats.iter().any(|p| code.contains(&**p)),
            );
        }
        check(
            Rule::CatchUnwind,
            unwind_pats.iter().any(|p| code.contains(&**p)),
        );
        if hot_path {
            check(Rule::HotPath, hot_pats.iter().any(|p| code.contains(&**p)));
        }
        // The marker may sit in the stripped trailing comment, so test the
        // blanked (but un-stripped) line; literal contents are blanked, so
        // a string mentioning the marker never exempts anything.
        let conc_justified = pending_conc || blanked.contains(&*conc);
        check(
            Rule::AtomicOrdering,
            !conc_justified && ordering_pats.iter().any(|p| code.contains(&**p)),
        );
        pending_conc = false;

        depth += opens - closes;
    }
    findings
}

/// Walks `crates/*/src` under `root`, scans every `.rs` file outside
/// `src/bin/`, and splits the findings by the allowlist.
///
/// # Errors
///
/// Propagates filesystem errors from the walk.
pub fn scan_workspace(root: &Path, allow: &Allowlist) -> io::Result<Report> {
    let _span = disparity_obs::span!("srclint.scan");
    let mut report = Report::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            walk_rs(&src, root, &mut findings, &mut report.files_scanned)?;
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    for finding in findings {
        if allow.covers(&finding) {
            report.allowed.push(finding);
        } else {
            report.denied.push(finding);
        }
    }
    for entry in allow.entries() {
        let used = report
            .allowed
            .iter()
            .any(|f| f.rule == entry.rule && f.path == entry.path);
        if !used {
            report.unused_allow.push(entry.clone());
        }
    }
    disparity_obs::counter_add("srclint.files", report.files_scanned as u64);
    disparity_obs::counter_add("srclint.denied", report.denied.len() as u64);
    disparity_obs::counter_add("srclint.allowed", report.allowed.len() as u64);
    Ok(report)
}

fn walk_rs(
    dir: &Path,
    root: &Path,
    findings: &mut Vec<Finding>,
    files_scanned: &mut usize,
) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Binaries may panic on CLI misuse; they are exempt.
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            walk_rs(&path, root, findings, files_scanned)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)?;
            *files_scanned += 1;
            findings.extend(scan_source(&rel, &text));
        }
    }
    Ok(())
}

fn crate_of(rel_path: &str) -> Option<&str> {
    let rest = rel_path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Strips a trailing `//` comment. Runs on [`blank_literals`] output, so a
/// `//` inside a string literal never truncates real code.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Replaces the *contents* of string and char literals with nothing,
/// keeping the delimiters. Braces and banned tokens inside literal text
/// would otherwise corrupt the depth tracking (think generated `"}"`
/// output) or invent findings from message strings. Lifetimes (`'a`) pass
/// through untouched; multi-line literals are out of scope for a
/// line-based scanner and merely hide text, never invent it.
fn blank_literals(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => {
                            chars.next();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
                out.push('"');
            }
            '\'' => {
                // Char literal ('x', '\n', '\u{7f}') or a lifetime ('a).
                let mut ahead = chars.clone();
                let is_char_literal = match ahead.next() {
                    Some('\\') => true,
                    Some(_) => ahead.next() == Some('\''),
                    None => false,
                };
                if is_char_literal {
                    out.push('\'');
                    let mut escaped = false;
                    for c in chars.by_ref() {
                        if escaped {
                            escaped = false;
                        } else if c == '\\' {
                            escaped = true;
                        } else if c == '\'' {
                            break;
                        }
                    }
                    out.push('\'');
                } else {
                    out.push('\'');
                }
            }
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(parts: [&str; 2]) -> String {
        parts.concat()
    }

    #[test]
    fn flags_panicking_constructs_in_library_code() {
        let src = format!("fn f(x: Option<u8>) -> u8 {{\n    x{}\n}}\n", pat([".unw", "rap()"]));
        let findings = scan_source("crates/model/src/x.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::Panic);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn skips_cfg_test_blocks_and_comments() {
        let src = format!(
            "fn ok() {{}}\n// comment with x{u}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ None::<u8>{u}; }}\n}}\nfn also_ok() {{}}\n",
            u = pat([".unw", "rap()"])
        );
        assert!(scan_source("crates/model/src/x.rs", &src).is_empty());
    }

    #[test]
    fn code_after_a_test_block_is_still_scanned() {
        let src = format!(
            "#[cfg(test)]\nmod tests {{\n    fn t() {{}}\n}}\nfn bad() {{ {p}\"x\"); }}\n",
            p = pat(["pan", "ic!("])
        );
        let findings = scan_source("crates/model/src/x.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn braces_inside_string_literals_do_not_corrupt_test_tracking() {
        // The '}' in the emitted string must not close `mod tests` early.
        let src = format!(
            "fn emit() -> String {{\n    \"}}\".to_string()\n}}\n#[cfg(test)]\nmod tests {{\n    fn t() {{ \"{{\"; None::<u8>{u}; }}\n}}\n",
            u = pat([".unw", "rap()"])
        );
        assert!(scan_source("crates/model/src/x.rs", &src).is_empty());
    }

    #[test]
    fn banned_tokens_inside_strings_and_chars_are_ignored() {
        let src = format!(
            "fn f() {{ let s = \"call {u} here\"; let c = '{{'; let l: &'static str = s; }}\n",
            u = pat([".unw", "rap()"])
        );
        assert!(scan_source("crates/model/src/x.rs", &src).is_empty());
    }

    #[test]
    fn time_cast_needs_a_time_marker_on_the_line() {
        let cast = pat(["as i6", "4"]);
        let plain = format!("let x = count {cast};\n");
        assert!(scan_source("crates/model/src/x.rs", &plain).is_empty());
        let timed = format!("let x = period_ns {cast};\n");
        let findings = scan_source("crates/model/src/x.rs", &timed);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::TimeCast);
    }

    #[test]
    fn wall_clock_only_fires_in_deterministic_crates() {
        let src = format!("let t = std::time::{};\n", pat(["Instant::", "now"]));
        assert_eq!(scan_source("crates/sim/src/x.rs", &src).len(), 1);
        assert!(scan_source("crates/obs/src/x.rs", &src).is_empty());
        assert!(scan_source("crates/bench/src/x.rs", &src).is_empty());
    }

    #[test]
    fn catch_unwind_is_flagged_in_any_library_crate() {
        let src = format!(
            "fn f() {{ let r = std::panic::{}(|| 1); drop(r); }}\n",
            pat(["catch_un", "wind"])
        );
        for path in ["crates/service/src/x.rs", "crates/model/src/x.rs"] {
            let findings = scan_source(path, &src);
            assert_eq!(findings.len(), 1, "{path}");
            assert_eq!(findings[0].rule, Rule::CatchUnwind);
        }
        assert_eq!(Rule::from_str_opt("catch-unwind"), Some(Rule::CatchUnwind));
    }

    #[test]
    fn hot_path_regions_deny_locks_and_allocation() {
        let lock = pat([".lo", "ck("]);
        let push = pat([".pu", "sh("]);
        let (begin, end) = hot_path_markers();
        let src = format!(
            "fn ok(v: &mut Vec<u8>) {{ v{push}1); }}\n\
             {begin} — wait-free region\n\
             fn hot(m: &std::sync::Mutex<Vec<u8>>) {{\n\
                 let mut g = m{lock}).unwrap_or_else(|e| e.into_inner());\n\
                 g{push}2);\n\
             }}\n\
             {end}\n\
             fn also_ok(v: &mut Vec<u8>) {{ v{push}3); }}\n"
        );
        let findings = scan_source("crates/obs/src/x.rs", &src);
        // Outside the markers nothing fires; inside, the signature's
        // `Mutex`, the `.lock(`, and the `.push(` each flag their line.
        let hot: Vec<_> = findings.iter().filter(|f| f.rule == Rule::HotPath).collect();
        assert_eq!(
            hot.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "{findings:?}"
        );
        assert_eq!(Rule::from_str_opt("hot-path"), Some(Rule::HotPath));
    }

    #[test]
    fn atomic_orderings_need_a_conc_justification() {
        let relaxed = pat(["Ordering::Rel", "axed"]);
        let seqcst = pat(["Ordering::Seq", "Cst"]);
        let marker = pat(["// co", "nc:"]);
        let bare = format!("fn f(c: &A) {{ c.load({relaxed}); c.store(1, {seqcst}); }}\n");
        let findings = scan_source("crates/service/src/x.rs", &bare);
        assert_eq!(findings.len(), 1, "one finding per line: {findings:?}");
        assert_eq!(findings[0].rule, Rule::AtomicOrdering);
        assert_eq!(Rule::from_str_opt("atomic-ordering"), Some(Rule::AtomicOrdering));

        // A trailing `// conc:` justification exempts the line...
        let inline = format!("fn f(c: &A) {{ c.load({relaxed}); {marker} counter\n}}\n");
        assert!(scan_source("crates/service/src/x.rs", &inline).is_empty());
        // ...as does a `// conc:` comment directly above it...
        let above = format!("{marker} gate, checked by the model harness\nfn f(c: &A) {{ c.load({relaxed}); }}\n");
        assert!(scan_source("crates/service/src/x.rs", &above).is_empty());
        // ...but the comment justifies exactly one code line.
        let stale = format!(
            "{marker} only the next line\nlet a = x.load({relaxed});\nlet b = y.load({relaxed});\n"
        );
        let findings = scan_source("crates/service/src/x.rs", &stale);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);

        // A marker inside a string literal is message text, not a waiver.
        let in_string = format!("fn f(c: &A) {{ log(\"{marker}\"); c.load({relaxed}); }}\n");
        assert_eq!(scan_source("crates/service/src/x.rs", &in_string).len(), 1);
    }

    #[test]
    fn model_feature_blocks_are_skipped_like_test_blocks() {
        let relaxed = pat(["Ordering::Rel", "axed"]);
        let attr = pat(["#[cfg(feature = \"mo", "del\")]"]);
        let src = format!(
            "{attr}\npub mod probes {{\n    fn p(c: &A) {{ c.load({relaxed}); }}\n}}\nfn real(c: &A) {{ c.load({relaxed}); }}\n"
        );
        let findings = scan_source("crates/obs/src/x.rs", &src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 5, "only the ungated site fires");
    }

    #[test]
    fn allowlist_requires_reasons_and_silences_exact_pairs() {
        assert!(Allowlist::parse("crates/a/src/x.rs panic").is_err());
        assert!(Allowlist::parse("crates/a/src/x.rs panic #   ").is_err());
        assert!(Allowlist::parse("crates/a/src/x.rs nonsense # why").is_err());
        let allow =
            Allowlist::parse("# header comment\ncrates/a/src/x.rs panic # poison recovery\n")
                .ok()
                .filter(|a| a.entries().len() == 1);
        assert!(allow.is_some(), "well-formed entry must parse");
        let allow = Allowlist::parse("crates/a/src/x.rs panic # r").ok();
        let Some(allow) = allow else {
            return;
        };
        let hit = Finding {
            path: "crates/a/src/x.rs".into(),
            line: 1,
            rule: Rule::Panic,
            snippet: String::new(),
        };
        let miss = Finding {
            rule: Rule::TimeCast,
            ..hit.clone()
        };
        assert!(allow.covers(&hit));
        assert!(!allow.covers(&miss));
    }
}
