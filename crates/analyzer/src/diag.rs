//! Diagnostic vocabulary: severities, stable error codes, subjects and the
//! ordered diagnostic set with its JSON form.
//!
//! Every check of the analyzer reports through this module so that output
//! is uniform: a [`Diagnostic`] carries a stable [`DiagCode`] (`D001`…),
//! a [`Severity`], the entity it refers to ([`Subject`]) and a rendered
//! message. A [`DiagnosticSet`] keeps them in a *canonical order* — sorted
//! by `(code, subject, message)` — so JSON output and test snapshots are
//! deterministic regardless of graph-construction or check-execution
//! order.

use core::fmt;

use disparity_model::ids::{ChannelId, EcuId, TaskId};
use disparity_model::json::Value;

/// Error returned when a diagnostics JSON document cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagParseError(String);

impl fmt::Display for DiagParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid diagnostics document: {}", self.0)
    }
}

impl std::error::Error for DiagParseError {}

/// How bad a diagnostic is.
///
/// `Error` means a theorem precondition is violated and analysis results
/// on this model would be unsound or unavailable; `Warn` flags designs
/// that are legal but degenerate (pessimistic bounds, wasted computation);
/// `Info` is advisory only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory observation; no impact on soundness.
    Info,
    /// Legal but suspicious; bounds stay sound but may be degenerate.
    Warn,
    /// A precondition of the paper's analysis is violated.
    Error,
}

impl Severity {
    /// The lowercase name used in JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Parses the JSON name back into a severity.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. The numeric part never changes meaning across
/// releases; retired codes are not reused.
///
/// See EXPERIMENTS.md, "Static analysis & diagnostics", for the full table
/// with paper references and example fixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `D001`: an ECU's utilization is ≥ 1 (Lemmas 4/5 need a bounded
    /// busy period).
    EcuOverloaded,
    /// `D002`: the WCRT fixed-point iteration failed to converge within
    /// its budget (utilization pathologically close to 1).
    WcrtDivergence,
    /// `D003`: a task's worst-case response time exceeds its period,
    /// violating the paper's standing assumption `R(τ) ≤ T(τ)` (§II.B).
    DeadlineMiss,
    /// `D004`: two tasks on one ECU share an explicit priority level, so
    /// the fixed-priority order is ambiguous.
    DuplicatePriority,
    /// `D005`: a task's non-preemptive blocking term consumes more than
    /// half its slack (`2·B > T − C`), so one lower-priority job dominates
    /// its response time.
    BlockingDominated,
    /// `D006`: a sink's chain set exceeded the enumeration budget, so the
    /// Theorem 2 fork-join preconditions (common-prefix well-formedness,
    /// buffer-shift validity) could not be verified for that sink.
    ChainBudgetExceeded,
    /// `D007`: a channel FIFO is larger than Algorithm 1's design: the
    /// Lemma 6 shift `L = (n−1)·T` overshoots the window alignment and
    /// re-widens the disparity on the other side.
    OverBuffered,
    /// `D008`: a producer fires two or more times per consumer job; most
    /// of its outputs are overwritten unread (§IV's "wasted computation").
    OversampledChannel,
    /// `D009`: a consumer fires two or more times per producer job and
    /// re-processes the same token.
    UndersampledChannel,
    /// `D010`: neither period divides the other; the sampling phase
    /// drifts, so backward times vary job to job.
    NonHarmonicChannel,
}

impl DiagCode {
    /// All codes, in ascending numeric order.
    pub const ALL: [DiagCode; 10] = [
        DiagCode::EcuOverloaded,
        DiagCode::WcrtDivergence,
        DiagCode::DeadlineMiss,
        DiagCode::DuplicatePriority,
        DiagCode::BlockingDominated,
        DiagCode::ChainBudgetExceeded,
        DiagCode::OverBuffered,
        DiagCode::OversampledChannel,
        DiagCode::UndersampledChannel,
        DiagCode::NonHarmonicChannel,
    ];

    /// The stable `D0xx` string.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::EcuOverloaded => "D001",
            DiagCode::WcrtDivergence => "D002",
            DiagCode::DeadlineMiss => "D003",
            DiagCode::DuplicatePriority => "D004",
            DiagCode::BlockingDominated => "D005",
            DiagCode::ChainBudgetExceeded => "D006",
            DiagCode::OverBuffered => "D007",
            DiagCode::OversampledChannel => "D008",
            DiagCode::UndersampledChannel => "D009",
            DiagCode::NonHarmonicChannel => "D010",
        }
    }

    /// Parses a `D0xx` string back into a code.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        DiagCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The severity this code is always reported at.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::EcuOverloaded
            | DiagCode::WcrtDivergence
            | DiagCode::DeadlineMiss
            | DiagCode::DuplicatePriority => Severity::Error,
            DiagCode::BlockingDominated
            | DiagCode::ChainBudgetExceeded
            | DiagCode::OverBuffered
            | DiagCode::OversampledChannel
            | DiagCode::UndersampledChannel => Severity::Warn,
            DiagCode::NonHarmonicChannel => Severity::Info,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The model entity a diagnostic refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subject {
    /// The whole system (no narrower anchor).
    System,
    /// A processing resource.
    Ecu(EcuId),
    /// A task.
    Task(TaskId),
    /// A register/FIFO channel.
    Channel(ChannelId),
}

impl Subject {
    /// `(kind, index)` used for JSON output; `System` has index 0.
    #[must_use]
    fn parts(self) -> (&'static str, usize) {
        match self {
            Subject::System => ("system", 0),
            Subject::Ecu(e) => ("ecu", e.index()),
            Subject::Task(t) => ("task", t.index()),
            Subject::Channel(c) => ("channel", c.index()),
        }
    }

    /// Rebuilds a subject from its JSON `(kind, index)` pair.
    #[must_use]
    fn from_parts(kind: &str, index: usize) -> Option<Self> {
        match kind {
            "system" => Some(Subject::System),
            "ecu" => Some(Subject::Ecu(EcuId::from_index(index))),
            "task" => Some(Subject::Task(TaskId::from_index(index))),
            "channel" => Some(Subject::Channel(ChannelId::from_index(index))),
            _ => None,
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::System => f.write_str("system"),
            Subject::Ecu(e) => write!(f, "{e}"),
            Subject::Task(t) => write!(f, "{t}"),
            Subject::Channel(c) => write!(f, "{c}"),
        }
    }
}

/// One finding of the model-diagnostics layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// The severity ([`DiagCode::severity`] of `code`).
    pub severity: Severity,
    /// What the finding is about.
    pub subject: Subject,
    /// Human-readable explanation with concrete numbers.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; the severity is derived from the code.
    #[must_use]
    pub fn new(code: DiagCode, subject: Subject, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            subject,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code, self.severity, self.subject, self.message
        )
    }
}

/// Schema tag of the JSON export, bumped on breaking layout changes.
pub const DIAGNOSTICS_SCHEMA: &str = "disparity-analyzer/diagnostics-v1";

/// An ordered collection of diagnostics.
///
/// The set is always kept in canonical order — ascending by
/// `(code, subject, message)` — which is what makes the JSON export and
/// test snapshots deterministic across graph-construction order (the
/// `lint_graph` ordering guarantee is subsumed by this).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagnosticSet {
    diagnostics: Vec<Diagnostic>,
}

impl DiagnosticSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        DiagnosticSet::default()
    }

    /// Builds a set from raw findings, establishing canonical order.
    #[must_use]
    pub fn from_vec(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            (a.code, a.subject, &a.message).cmp(&(b.code, b.subject, &b.message))
        });
        DiagnosticSet { diagnostics }
    }

    /// The findings, in canonical order.
    #[must_use]
    pub fn as_slice(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// Whether the set holds no findings at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings of exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }

    /// Number of `Error`-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.with_severity(Severity::Error).count()
    }

    /// Whether any finding is an `Error`.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of findings carrying `code`.
    #[must_use]
    pub fn count_of(&self, code: DiagCode) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// The machine-readable JSON form (see [`DIAGNOSTICS_SCHEMA`]).
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut items = Vec::with_capacity(self.diagnostics.len());
        for d in &self.diagnostics {
            let (kind, index) = d.subject.parts();
            items.push(Value::Object(vec![
                ("code".to_string(), Value::Str(d.code.as_str().to_string())),
                (
                    "severity".to_string(),
                    Value::Str(d.severity.as_str().to_string()),
                ),
                ("subject_kind".to_string(), Value::Str(kind.to_string())),
                (
                    "subject_index".to_string(),
                    Value::Int(i64::try_from(index).unwrap_or(i64::MAX)),
                ),
                ("message".to_string(), Value::Str(d.message.clone())),
            ]));
        }
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::Str(DIAGNOSTICS_SCHEMA.to_string()),
            ),
            (
                "counts".to_string(),
                Value::Object(vec![
                    (
                        "error".to_string(),
                        Value::Int(self.with_severity(Severity::Error).count() as i64),
                    ),
                    (
                        "warn".to_string(),
                        Value::Int(self.with_severity(Severity::Warn).count() as i64),
                    ),
                    (
                        "info".to_string(),
                        Value::Int(self.with_severity(Severity::Info).count() as i64),
                    ),
                ]),
            ),
            ("diagnostics".to_string(), Value::Array(items)),
        ])
    }

    /// Parses a value produced by [`DiagnosticSet::to_json`] back.
    ///
    /// # Errors
    ///
    /// [`DiagParseError`] if the schema tag, a code, a severity or a
    /// subject is missing or unknown.
    pub fn from_json(value: &Value) -> Result<Self, DiagParseError> {
        let bad = |msg: &str| DiagParseError(msg.to_string());
        let schema = value
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing schema tag"))?;
        if schema != DIAGNOSTICS_SCHEMA {
            return Err(bad("unknown diagnostics schema"));
        }
        let items = value
            .get("diagnostics")
            .and_then(Value::as_array)
            .ok_or_else(|| bad("missing diagnostics array"))?;
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let code = item
                .get("code")
                .and_then(Value::as_str)
                .and_then(DiagCode::from_str_opt)
                .ok_or_else(|| bad("bad diagnostic code"))?;
            let severity = item
                .get("severity")
                .and_then(Value::as_str)
                .and_then(Severity::from_str_opt)
                .ok_or_else(|| bad("bad diagnostic severity"))?;
            let kind = item
                .get("subject_kind")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("missing subject kind"))?;
            let index = item
                .get("subject_index")
                .and_then(Value::as_i64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| bad("missing subject index"))?;
            let subject =
                Subject::from_parts(kind, index).ok_or_else(|| bad("unknown subject kind"))?;
            let message = item
                .get("message")
                .and_then(Value::as_str)
                .ok_or_else(|| bad("missing message"))?
                .to_string();
            out.push(Diagnostic {
                code,
                severity,
                subject,
                message,
            });
        }
        Ok(DiagnosticSet::from_vec(out))
    }
}

impl fmt::Display for DiagnosticSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_are_ordered() {
        let mut last = None;
        for code in DiagCode::ALL {
            assert_eq!(DiagCode::from_str_opt(code.as_str()), Some(code));
            if let Some(prev) = last {
                assert!(prev < code, "ALL must be ascending");
            }
            last = Some(code);
        }
        assert_eq!(DiagCode::from_str_opt("D999"), None);
    }

    #[test]
    fn severity_round_trips() {
        for s in [Severity::Info, Severity::Warn, Severity::Error] {
            assert_eq!(Severity::from_str_opt(s.as_str()), Some(s));
        }
        assert!(Severity::Info < Severity::Warn && Severity::Warn < Severity::Error);
    }

    #[test]
    fn set_is_canonically_ordered() {
        let set = DiagnosticSet::from_vec(vec![
            Diagnostic::new(
                DiagCode::NonHarmonicChannel,
                Subject::Channel(ChannelId::from_index(7)),
                "b",
            ),
            Diagnostic::new(
                DiagCode::EcuOverloaded,
                Subject::Ecu(EcuId::from_index(1)),
                "a",
            ),
            Diagnostic::new(
                DiagCode::NonHarmonicChannel,
                Subject::Channel(ChannelId::from_index(2)),
                "a",
            ),
        ]);
        let codes: Vec<&str> = set.as_slice().iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["D001", "D010", "D010"]);
        assert_eq!(
            set.as_slice()[1].subject,
            Subject::Channel(ChannelId::from_index(2))
        );
        assert!(set.has_errors());
        assert_eq!(set.error_count(), 1);
        assert_eq!(set.count_of(DiagCode::NonHarmonicChannel), 2);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let set = DiagnosticSet::from_vec(vec![
            Diagnostic::new(
                DiagCode::DeadlineMiss,
                Subject::Task(TaskId::from_index(3)),
                "task3 misses its deadline",
            ),
            Diagnostic::new(DiagCode::BlockingDominated, Subject::System, "whole system"),
        ]);
        let json = set.to_json();
        let back = DiagnosticSet::from_json(&json).unwrap();
        assert_eq!(set, back);
        // And via text, through the in-tree parser.
        let text = json.to_string();
        let reparsed = Value::parse(&text).unwrap();
        assert_eq!(DiagnosticSet::from_json(&reparsed).unwrap(), set);
    }

    #[test]
    fn from_json_rejects_garbage() {
        let v = Value::parse("{\"schema\":\"nope\"}").unwrap();
        assert!(DiagnosticSet::from_json(&v).is_err());
    }
}
