//! `srclint` — the workspace source lint gate.
//!
//! Walks `crates/*/src`, denies banned patterns (panicking constructs,
//! unchecked time casts, wall-clock reads in deterministic crates,
//! panic-swallowing `catch_unwind` boundaries, unjustified
//! `Relaxed`/`SeqCst` atomic orderings), and honors the committed
//! allowlist. Exit codes: 0 clean, 1 denied findings, 2 usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use disparity_analyzer::srclint::{scan_workspace, Allowlist, Report};
use disparity_model::json::Value;

const USAGE: &str = "\
srclint: deny banned source patterns in workspace library code

USAGE:
    srclint [--root <dir>] [--allowlist <file>] [--json <path>] [--quiet]

OPTIONS:
    --root <dir>        workspace root to scan (default: .)
    --allowlist <file>  exception list (default: <root>/srclint.allow)
    --json <path>       also write the report as JSON
    --quiet             suppress per-finding output
    -h, --help          show this help
";

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("srclint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut allow_path: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--allowlist" => {
                allow_path = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a value")?,
                ));
            }
            "--json" => json_out = Some(PathBuf::from(args.next().ok_or("--json needs a value")?)),
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }

    let allow_path = allow_path.unwrap_or_else(|| root.join("srclint.allow"));
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::default()
    };

    let report = scan_workspace(&root, &allow).map_err(|e| format!("scan failed: {e}"))?;

    if !quiet {
        for finding in &report.denied {
            println!("deny  {finding}");
        }
        for finding in &report.allowed {
            println!("allow {finding}");
        }
    }
    for entry in &report.unused_allow {
        eprintln!(
            "srclint: note: unused allowlist entry: {} {} # {}",
            entry.path, entry.rule, entry.reason
        );
    }
    println!(
        "srclint: {} files scanned, {} denied, {} allowed ({} allowlist entries)",
        report.files_scanned,
        report.denied.len(),
        report.allowed.len(),
        allow.entries().len()
    );

    if let Some(path) = json_out {
        let json = report_json(&report);
        std::fs::write(&path, json.to_pretty())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(report.is_clean())
}

fn report_json(report: &Report) -> Value {
    let findings = |list: &[disparity_analyzer::srclint::Finding]| {
        Value::Array(
            list.iter()
                .map(|f| {
                    Value::Object(vec![
                        ("path".to_string(), Value::Str(f.path.clone())),
                        (
                            "line".to_string(),
                            Value::Int(i64::try_from(f.line).unwrap_or(i64::MAX)),
                        ),
                        ("rule".to_string(), Value::Str(f.rule.to_string())),
                        ("snippet".to_string(), Value::Str(f.snippet.clone())),
                    ])
                })
                .collect(),
        )
    };
    Value::Object(vec![
        (
            "schema".to_string(),
            Value::Str("disparity-analyzer/srclint-v1".to_string()),
        ),
        (
            "files_scanned".to_string(),
            Value::Int(i64::try_from(report.files_scanned).unwrap_or(i64::MAX)),
        ),
        ("denied".to_string(), findings(&report.denied)),
        ("allowed".to_string(), findings(&report.allowed)),
    ])
}
