//! `diag` — run the `D0xx` model diagnostics on a `SystemSpec` JSON file.
//!
//! Prints every diagnostic with its stable code and severity. Exit codes:
//! 0 clean (or only warnings), 1 when `--deny-lints` is set and any
//! `Error`-severity diagnostic fired, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use disparity_analyzer::{analyze_spec, DiagConfig, Severity};
use disparity_model::spec::SystemSpec;

const USAGE: &str = "\
diag: static model diagnostics (D001..D010) for a system spec

USAGE:
    diag <spec.json> [--deny-lints] [--lints-out <path>] [--chain-limit <n>]

OPTIONS:
    --deny-lints        exit non-zero if any Error-severity diagnostic fires
    --lints-out <path>  write the diagnostic set as JSON
    --chain-limit <n>   chain enumeration budget per sink (default: 4096)
    -h, --help          show this help
";

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("diag: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<bool, String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut lints_out: Option<PathBuf> = None;
    let mut config = DiagConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-lints" => deny = true,
            "--lints-out" => {
                lints_out = Some(PathBuf::from(
                    args.next().ok_or("--lints-out needs a value")?,
                ));
            }
            "--chain-limit" => {
                config.chain_limit = args
                    .next()
                    .ok_or("--chain-limit needs a value")?
                    .parse()
                    .map_err(|e| format!("--chain-limit: {e}"))?;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(true);
            }
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }

    let spec_path = spec_path.ok_or_else(|| format!("missing <spec.json>\n\n{USAGE}"))?;
    let text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("{}: {e}", spec_path.display()))?;
    let spec = SystemSpec::from_json_str(&text).map_err(|e| format!("invalid spec: {e}"))?;
    let set = analyze_spec(&spec, &config).map_err(|e| format!("spec does not build: {e}"))?;

    for diag in set.as_slice() {
        println!("{diag}");
    }
    println!(
        "diag: {} diagnostics ({} error, {} warn, {} info)",
        set.len(),
        set.with_severity(Severity::Error).count(),
        set.with_severity(Severity::Warn).count(),
        set.with_severity(Severity::Info).count()
    );

    if let Some(path) = lints_out {
        std::fs::write(&path, set.to_json().to_pretty())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(!(deny && set.has_errors()))
}
