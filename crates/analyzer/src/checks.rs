//! The diagnostic checks: every `D0xx` rule evaluated over a
//! [`CauseEffectGraph`] or a [`SystemSpec`].
//!
//! [`analyze_graph`] is the workhorse: it never fails, it only reports.
//! [`analyze_spec`] adds the one check that must run *before* graph
//! construction ([`DiagCode::DuplicatePriority`], which the builder would
//! otherwise reject with a hard error) and then defers to [`analyze_graph`].

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use disparity_core::pairwise::decompose;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::lints::{lint_graph, Lint};
use disparity_model::spec::{SpecError, SystemSpec};
use disparity_sched::error::SchedError;
use disparity_sched::utilization::ecu_utilization;
use disparity_sched::wcrt::{response_times, ResponseTimes};

use crate::diag::{DiagCode, Diagnostic, DiagnosticSet, Subject};

/// Tuning knobs for [`analyze_graph`].
#[derive(Debug, Clone)]
pub struct DiagConfig {
    /// Budget for chain enumeration per sink (mirrors the experiment
    /// binaries' `chain_limit`). Sinks whose chain set exceeds the budget
    /// are skipped by the pairwise checks (D006/D007) and counted on the
    /// `analyzer.chains_skipped` obs counter.
    pub chain_limit: usize,
}

impl Default for DiagConfig {
    fn default() -> Self {
        DiagConfig { chain_limit: 4096 }
    }
}

/// Runs every graph-level check and returns the canonical diagnostic set.
///
/// The pass is read-only and deterministic: diagnostics come back sorted by
/// `(code, subject, message)` regardless of graph-construction order, and
/// nothing about the graph (including its RNG-driven surroundings) is
/// touched, so running it before an experiment sweep cannot perturb the
/// sweep's results.
#[must_use]
pub fn analyze_graph(graph: &CauseEffectGraph, config: &DiagConfig) -> DiagnosticSet {
    let _span = disparity_obs::span!("analyzer.diagnose", tasks = graph.task_count());
    let mut out = Vec::new();

    check_utilization(graph, &mut out);
    let rt = check_wcrt(graph, &mut out);
    check_blocking(graph, &mut out);
    if let Some(rt) = &rt {
        check_pairwise(graph, rt, config, &mut out);
    }
    check_sampling(graph, &mut out);

    let set = DiagnosticSet::from_vec(out);
    disparity_obs::counter_add("analyzer.diagnostics", set.len() as u64);
    disparity_obs::counter_add("analyzer.errors", set.error_count() as u64);
    set
}

/// Runs the spec-level checks, then builds the graph and runs
/// [`analyze_graph`].
///
/// Duplicate explicit priorities (D004) are reported as diagnostics instead
/// of surfacing as the builder's hard [`SpecError`]; any *other* build
/// failure (unknown names, duplicate names, …) is returned as `Err` since
/// those are malformed inputs, not analyzable models.
///
/// # Errors
///
/// Returns the underlying [`SpecError`] when the spec cannot be turned into
/// a graph for a reason other than duplicate priorities.
pub fn analyze_spec(spec: &SystemSpec, config: &DiagConfig) -> Result<DiagnosticSet, SpecError> {
    let _span = disparity_obs::span!("analyzer.diagnose_spec", tasks = spec.tasks.len());
    let mut dups = Vec::new();
    let mut seen: BTreeMap<(&str, u32), usize> = BTreeMap::new();
    for (i, task) in spec.tasks.iter().enumerate() {
        let (Some(ecu), Some(priority)) = (task.ecu.as_deref(), task.priority) else {
            continue;
        };
        match seen.get(&(ecu, priority)) {
            Some(&first) => dups.push(Diagnostic::new(
                DiagCode::DuplicatePriority,
                Subject::Task(TaskId::from_index(i)),
                format!(
                    "task '{}' reuses explicit priority {} already held by task '{}' on ecu '{}'; fixed-priority analysis needs a total order",
                    task.name, priority, spec.tasks[first].name, ecu
                ),
            )),
            None => {
                seen.insert((ecu, priority), i);
            }
        }
    }
    if !dups.is_empty() {
        // The builder would reject this spec outright; report instead.
        return Ok(DiagnosticSet::from_vec(dups));
    }
    let graph = spec.build()?;
    Ok(analyze_graph(&graph, config))
}

/// D001: per-ECU utilization must stay below 1 for the level-i busy period
/// (and with it Lemmas 4/5) to be bounded.
fn check_utilization(graph: &CauseEffectGraph, out: &mut Vec<Diagnostic>) {
    for ecu in graph.ecus() {
        let u = ecu_utilization(graph, ecu.id());
        if u >= 1.0 {
            out.push(Diagnostic::new(
                DiagCode::EcuOverloaded,
                Subject::Ecu(ecu.id()),
                format!(
                    "utilization {:.6} >= 1 on '{}'; the busy period is unbounded, so no WCRT (Lemmas 4/5) exists — shed load or remap tasks",
                    u,
                    ecu.name()
                ),
            ));
        }
    }
}

/// D002 (fixed-point divergence) and D003 (deadline misses): the WCRT
/// analysis underpinning every backward-time bound.
fn check_wcrt(graph: &CauseEffectGraph, out: &mut Vec<Diagnostic>) -> Option<ResponseTimes> {
    match response_times(graph) {
        Ok(rt) => {
            for task in graph.tasks() {
                let Some(resp) = rt.get(task.id()) else {
                    continue;
                };
                if resp.wcrt > task.period() {
                    out.push(Diagnostic::new(
                        DiagCode::DeadlineMiss,
                        Subject::Task(task.id()),
                        format!(
                            "WCRT {} exceeds period {} for '{}'; Lemma 4's R(i) <= T(i) premise fails — raise the period or the task's priority",
                            resp.wcrt,
                            task.period(),
                            task.name()
                        ),
                    ));
                }
            }
            Some(rt)
        }
        Err(SchedError::NonConvergence { task }) => {
            out.push(Diagnostic::new(
                DiagCode::WcrtDivergence,
                Subject::Task(task),
                format!(
                    "WCRT fixed point for '{}' did not converge within the iteration budget; utilization is pathologically close to 1 — add slack",
                    graph.task(task).name()
                ),
            ));
            None
        }
        // Overload is already reported per-ECU by D001 with more detail.
        Err(_) => None,
    }
}

/// D005: a non-preemptive blocking term so large it dominates the task's
/// own slack makes the WCRT bound valid but uselessly pessimistic.
fn check_blocking(graph: &CauseEffectGraph, out: &mut Vec<Diagnostic>) {
    for task in graph.tasks() {
        let id = task.id();
        let Some(ecu) = task.ecu() else { continue };
        let mut blocking = disparity_model::time::Duration::ZERO;
        for other_id in graph.tasks_on_ecu(ecu) {
            if other_id == id {
                continue;
            }
            let other = graph.task(other_id);
            if !graph.in_hp(other_id, id) {
                blocking = blocking.max(other.wcet());
            }
        }
        let slack = task.period() - task.wcet();
        if blocking > disparity_model::time::Duration::ZERO && blocking * 2 > slack {
            out.push(Diagnostic::new(
                DiagCode::BlockingDominated,
                Subject::Task(id),
                format!(
                    "non-preemptive blocking term {} exceeds half of '{}''s slack {} (period - wcet); lower-priority WCETs dominate the response time — split the long job or re-prioritize",
                    blocking,
                    task.name(),
                    slack
                ),
            ));
        }
    }
}

/// D006 (chain budget exceeded) and D007 (over-buffered channels): the
/// Theorem 2 fork-join decomposition checks, evaluated per chain pair.
fn check_pairwise(
    graph: &CauseEffectGraph,
    rt: &ResponseTimes,
    config: &DiagConfig,
    out: &mut Vec<Diagnostic>,
) {
    let _span = disparity_obs::span!("analyzer.pairwise");
    let mut over_buffered = BTreeSet::new();
    for sink in graph.sinks() {
        let Ok(chains) = graph.chains_to(sink, config.chain_limit) else {
            disparity_obs::counter_add("analyzer.chains_skipped", 1);
            out.push(Diagnostic::new(
                DiagCode::ChainBudgetExceeded,
                Subject::Task(sink),
                format!(
                    "more than {} chains reach '{}'; the Theorem 2 fork-join preconditions are unverified for this sink — raise the chain budget or prune the graph",
                    config.chain_limit,
                    graph.task(sink).name()
                ),
            ));
            continue;
        };
        for i in 0..chains.len() {
            for j in (i + 1)..chains.len() {
                let Some((lambda, nu)) = chains[i].truncate_to_last_joint(&chains[j]) else {
                    continue;
                };
                if lambda == nu {
                    continue;
                }
                let Ok(d) = decompose(graph, &lambda, &nu, rt) else {
                    continue;
                };
                let w_lambda = d.lambda_source_window();
                let w_nu = d.nu_source_window(graph);
                for (chain, mid, other_mid) in [
                    (&lambda, w_lambda.midpoint(), w_nu.midpoint()),
                    (&nu, w_nu.midpoint(), w_lambda.midpoint()),
                ] {
                    let Some(second) = chain.get(1) else { continue };
                    let Some(channel) = graph.channel_between(chain.head(), second) else {
                        continue;
                    };
                    // Algorithm 1 shifts the *fresher* window down by whole
                    // source periods via floor, so a designed buffer leaves
                    // this side's midpoint >= the other side's. A buffered
                    // side that ends up strictly older overshot the design.
                    if channel.capacity() > 1 && mid < other_mid && over_buffered.insert(channel.id())
                    {
                        out.push(Diagnostic::new(
                            DiagCode::OverBuffered,
                            Subject::Channel(channel.id()),
                            format!(
                                "capacity {} shifts '{}''s sampling window below its peer's for the pair ({} | {}); the buffer exceeds Algorithm 1's design and now worsens alignment — reduce the capacity",
                                channel.capacity(),
                                graph.task(chain.head()).name(),
                                lambda,
                                nu
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// D008/D009/D010: the sampling-rate lints from `disparity-model`, migrated
/// into the diagnostic framework.
fn check_sampling(graph: &CauseEffectGraph, out: &mut Vec<Diagnostic>) {
    for lint in lint_graph(graph) {
        let diag = match lint {
            Lint::OversampledChannel {
                channel,
                producer_jobs_per_consumer_job,
            } => Diagnostic::new(
                DiagCode::OversampledChannel,
                Subject::Channel(channel),
                format!(
                    "producer publishes {producer_jobs_per_consumer_job} samples per consumer job; all but the last are never read — slow the producer or batch"
                ),
            ),
            Lint::UndersampledChannel {
                channel,
                consumer_jobs_per_producer_job,
            } => Diagnostic::new(
                DiagCode::UndersampledChannel,
                Subject::Channel(channel),
                format!(
                    "consumer re-reads each sample {consumer_jobs_per_producer_job} times before it refreshes; staleness grows with the ratio — speed up the producer"
                ),
            ),
            Lint::NonHarmonicChannel { channel } => Diagnostic::new(
                DiagCode::NonHarmonicChannel,
                Subject::Channel(channel),
                "producer and consumer periods are non-harmonic; the sampling pattern drifts over the hyperperiod, which widens disparity windows".to_string(),
            ),
            // `Lint` is non_exhaustive; unknown future lints are skipped
            // rather than guessed at.
            _ => {
                disparity_obs::counter_add("analyzer.unknown_lints", 1);
                continue;
            }
        };
        out.push(diag);
    }
}
