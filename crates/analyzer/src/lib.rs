//! Two-layer static analysis for the time-disparity workspace.
//!
//! **Layer 1 — model diagnostics** ([`diag`], [`checks`]): a severity-graded
//! diagnostic engine with stable `D001…D010` error codes that statically
//! verifies the paper's theorem preconditions over a [`SystemSpec`] or
//! [`CauseEffectGraph`] *before* any bound is computed — per-ECU
//! utilization (D001), WCRT fixed-point convergence for Lemmas 4/5
//! (D002/D003), priority uniqueness (D004), non-preemptive blocking-term
//! validity (D005), Theorem 2 fork-join well-formedness (D006), Lemma 6 /
//! Algorithm 1 buffer-shift bounds (D007), and the sampling-rate lints
//! migrated from `disparity-model` (D008–D010). Diagnostics are
//! deterministic (sorted by code, subject, message) and export to JSON via
//! the in-tree encoder.
//!
//! **Layer 2 — source lint** ([`srclint`]): a lightweight line/token
//! scanner over `crates/*/src` that denies panicking constructs, unchecked
//! time casts, and wall-clock reads in deterministic crates, with a
//! committed allowlist for the few justified sites. Shipped as the
//! `srclint` binary and wired into tier-1 CI.
//!
//! The full error-code table (severity, paper reference, example fix)
//! lives in `EXPERIMENTS.md` under "Static analysis & diagnostics".
//!
//! [`SystemSpec`]: disparity_model::spec::SystemSpec
//! [`CauseEffectGraph`]: disparity_model::graph::CauseEffectGraph

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checks;
pub mod diag;
pub mod srclint;

/// The commonly used names in one import.
pub mod prelude {
    pub use crate::checks::{analyze_graph, analyze_spec, DiagConfig};
    pub use crate::diag::{
        DiagCode, DiagParseError, Diagnostic, DiagnosticSet, Severity, Subject,
    };
    pub use crate::srclint::{scan_source, scan_workspace, Allowlist, Finding, Report, Rule};
}

pub use checks::{analyze_graph, analyze_spec, DiagConfig};
pub use diag::{DiagCode, DiagParseError, Diagnostic, DiagnosticSet, Severity, Subject};
