//! Golden-file and round-trip coverage of the diagnostics JSON layout:
//! the compact serialization of a hand-built set is pinned byte-for-byte,
//! and both hand-built and analyzer-produced sets must survive
//! `to_json` → text → parse → `from_json` unchanged.

use disparity_analyzer::{
    analyze_graph, DiagCode, DiagConfig, Diagnostic, DiagnosticSet, Subject,
};
use disparity_model::builder::SystemBuilder;
use disparity_model::ids::{ChannelId, EcuId};
use disparity_model::json::Value;
use disparity_model::task::TaskSpec;
use disparity_model::time::Duration;

fn golden_set() -> DiagnosticSet {
    DiagnosticSet::from_vec(vec![
        Diagnostic::new(
            DiagCode::NonHarmonicChannel,
            Subject::Channel(ChannelId::from_index(2)),
            "periods 20ms and 50ms are non-harmonic",
        ),
        Diagnostic::new(
            DiagCode::EcuOverloaded,
            Subject::Ecu(EcuId::from_index(0)),
            "utilization 1.400000 >= 1 on 'e'",
        ),
    ])
}

/// The exact compact serialization. Changing this string is a breaking
/// change to `disparity-analyzer/diagnostics-v1` and needs a schema bump.
const GOLDEN: &str = concat!(
    "{\"schema\":\"disparity-analyzer/diagnostics-v1\",",
    "\"counts\":{\"error\":1,\"warn\":0,\"info\":1},",
    "\"diagnostics\":[",
    "{\"code\":\"D001\",\"severity\":\"error\",\"subject_kind\":\"ecu\",",
    "\"subject_index\":0,\"message\":\"utilization 1.400000 >= 1 on 'e'\"},",
    "{\"code\":\"D010\",\"severity\":\"info\",\"subject_kind\":\"channel\",",
    "\"subject_index\":2,\"message\":\"periods 20ms and 50ms are non-harmonic\"}",
    "]}"
);

#[test]
fn compact_serialization_matches_golden() {
    assert_eq!(golden_set().to_json().to_string(), GOLDEN);
}

#[test]
fn golden_text_parses_back_to_the_same_set() {
    let value = Value::parse(GOLDEN).expect("golden text parses");
    let parsed = DiagnosticSet::from_json(&value).expect("golden text decodes");
    assert_eq!(parsed, golden_set());
}

#[test]
fn pretty_round_trip_preserves_analyzer_output() {
    // A real analyzer run (one D008 lint) through the pretty printer.
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let ms = Duration::from_millis;
    let fast = b.add_task(TaskSpec::periodic("fast", ms(10)));
    let slow = b.add_task(TaskSpec::periodic("slow", ms(30)).wcet(ms(1)).on_ecu(e));
    b.connect(fast, slow);
    let set = analyze_graph(&b.build().expect("builds"), &DiagConfig::default());
    assert!(!set.is_empty(), "fixture should lint");

    let text = set.to_json().to_pretty();
    let value = Value::parse(&text).expect("pretty output parses");
    let parsed = DiagnosticSet::from_json(&value).expect("round-trips");
    assert_eq!(parsed, set);
}

#[test]
fn malformed_documents_are_rejected() {
    for bad in [
        r#"{"schema":"other/v9","diagnostics":[]}"#,
        r#"{"diagnostics":[]}"#,
        r#"{"schema":"disparity-analyzer/diagnostics-v1"}"#,
        r#"{"schema":"disparity-analyzer/diagnostics-v1","diagnostics":[{"code":"D099","severity":"warn","subject_kind":"task","subject_index":0,"message":"x"}]}"#,
    ] {
        let value = Value::parse(bad).expect("test input is valid JSON");
        assert!(DiagnosticSet::from_json(&value).is_err(), "accepted: {bad}");
    }
}
