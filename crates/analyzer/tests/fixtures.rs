//! Targeted fixtures: one minimal system per diagnostic code, each
//! asserting that its `D0xx` code is reported exactly once.

use disparity_analyzer::{analyze_graph, analyze_spec, DiagCode, DiagConfig, DiagnosticSet};
use disparity_model::builder::SystemBuilder;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::SystemSpec;
use disparity_model::ids::Priority;
use disparity_model::task::TaskSpec;
use disparity_model::time::Duration;

fn ms(v: i64) -> Duration {
    Duration::from_millis(v)
}

fn diagnose(graph: &CauseEffectGraph) -> DiagnosticSet {
    analyze_graph(graph, &DiagConfig::default())
}

fn assert_once(set: &DiagnosticSet, code: DiagCode) {
    assert_eq!(
        set.count_of(code),
        1,
        "expected exactly one {code}, got: {set}"
    );
}

#[test]
fn d001_ecu_overloaded() {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let src = b.add_task(TaskSpec::periodic("src", ms(10)));
    let t = b.add_task(TaskSpec::periodic("t", ms(10)).execution(ms(7), ms(7)).on_ecu(e));
    let u = b.add_task(TaskSpec::periodic("u", ms(10)).execution(ms(7), ms(7)).on_ecu(e));
    b.connect(src, t);
    b.connect(t, u);
    let set = diagnose(&b.build().expect("fixture builds"));
    assert_once(&set, DiagCode::EcuOverloaded);
}

#[test]
fn d002_wcrt_divergence() {
    // Utilization stays below 1, yet 'mid's start-delay fixed point sits
    // ~2e6 interference steps away: the 2 ms blocking term from 'low'
    // seeds the iteration, and the near-saturating 'hi' then adds one
    // 999999999 ns release per step. The fixed point exists but lies far
    // beyond the 1e6-iteration budget.
    let ns = Duration::from_nanos;
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    for (name, prio) in [("mid", 1), ("low", 2)] {
        b.add_task(
            TaskSpec::periodic(name, ns(10_000_000_000_000_000))
                .execution(ns(2_000_000), ns(2_000_000))
                .on_ecu(e)
                .priority(Priority::new(prio)),
        );
    }
    b.add_task(
        TaskSpec::periodic("hi", ns(1_000_000_000))
            .execution(ns(999_999_999), ns(999_999_999))
            .on_ecu(e)
            .priority(Priority::new(0)),
    );
    let set = diagnose(&b.build().expect("fixture builds"));
    assert_once(&set, DiagCode::WcrtDivergence);
    assert_eq!(set.count_of(DiagCode::EcuOverloaded), 0, "u < 1 here");
}

#[test]
fn d003_deadline_miss() {
    // u = 0.3 + 0.625 < 1 and the fixed point converges, but the
    // low-priority task's WCRT (55 ms) exceeds its 40 ms period. The
    // high-priority task keeps enough slack that D005 stays quiet.
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let hi = b.add_task(
        TaskSpec::periodic("hi", ms(100))
            .execution(ms(30), ms(30))
            .on_ecu(e)
            .priority(Priority::new(0)),
    );
    let lo = b.add_task(
        TaskSpec::periodic("lo", ms(40))
            .execution(ms(25), ms(25))
            .on_ecu(e)
            .priority(Priority::new(1)),
    );
    b.connect(hi, lo);
    let set = diagnose(&b.build().expect("fixture builds"));
    assert_once(&set, DiagCode::DeadlineMiss);
    assert_eq!(set.count_of(DiagCode::BlockingDominated), 0);
}

#[test]
fn d004_duplicate_priority() {
    let spec = SystemSpec::from_json_str(
        r#"{
            "ecus": [{"name": "e"}],
            "tasks": [
                {"name": "src", "period": 10000000},
                {"name": "a", "period": 10000000, "wcet": 1000000, "ecu": "e", "priority": 1},
                {"name": "b", "period": 10000000, "wcet": 1000000, "ecu": "e", "priority": 1}
            ],
            "channels": [
                {"from": "src", "to": "a"},
                {"from": "a", "to": "b"}
            ]
        }"#,
    )
    .expect("fixture spec parses");
    let set = analyze_spec(&spec, &DiagConfig::default()).expect("spec analyzable");
    assert_once(&set, DiagCode::DuplicatePriority);
}

#[test]
fn d005_blocking_dominated() {
    // The 8 ms lower-priority job more than doubles the 9 ms slack of the
    // 10 ms high-priority task; everything stays schedulable.
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let hi = b.add_task(
        TaskSpec::periodic("hi", ms(10))
            .execution(ms(1), ms(1))
            .on_ecu(e)
            .priority(Priority::new(0)),
    );
    let lo = b.add_task(
        TaskSpec::periodic("lo", ms(100))
            .execution(ms(8), ms(8))
            .on_ecu(e)
            .priority(Priority::new(1)),
    );
    // No channel between hi and lo: a 10:100 connection would add D008.
    let _ = (hi, lo);
    let set = diagnose(&b.build().expect("fixture builds"));
    assert_once(&set, DiagCode::BlockingDominated);
    assert_eq!(set.count_of(DiagCode::OversampledChannel), 0);
}

/// A deterministic diamond `src -> {a, b} -> join`: every task has
/// `bcet = wcet` and its own ECU, so each branch's backward time is a
/// single point and the job-index window math is exact.
fn diamond(wcet_a: Duration, wcet_b: Duration, cap_a: usize) -> CauseEffectGraph {
    let mut b = SystemBuilder::new();
    let (e1, e2, e3) = (b.add_ecu("e1"), b.add_ecu("e2"), b.add_ecu("e3"));
    let src = b.add_task(TaskSpec::periodic("src", ms(10)));
    let a = b.add_task(TaskSpec::periodic("a", ms(10)).execution(wcet_a, wcet_a).on_ecu(e1));
    let bb = b.add_task(TaskSpec::periodic("b", ms(10)).execution(wcet_b, wcet_b).on_ecu(e2));
    let join = b.add_task(TaskSpec::periodic("join", ms(10)).execution(ms(1), ms(1)).on_ecu(e3));
    b.connect_with_capacity(src, a, cap_a);
    b.connect(src, bb);
    b.connect(a, join);
    b.connect(bb, join);
    b.build().expect("diamond builds")
}

#[test]
fn d006_chain_budget_exceeded() {
    // Two chains reach the join but the budget admits only one, so the
    // pairwise Theorem 2 preconditions stay unverified for that sink.
    let graph = diamond(ms(1), ms(1), 1);
    let set = analyze_graph(&graph, &DiagConfig { chain_limit: 1 });
    assert_once(&set, DiagCode::ChainBudgetExceeded);
    // With the default budget the same graph is clean.
    assert_eq!(diagnose(&graph).count_of(DiagCode::ChainBudgetExceeded), 0);
}

#[test]
fn d007_over_buffered() {
    // Symmetric branches need no alignment buffer at all, so capacity 3 on
    // one branch (a two-period backward shift) overshoots the design and
    // drags that side's sampling window strictly below its peer's.
    let set = diagnose(&diamond(ms(1), ms(1), 3));
    assert_once(&set, DiagCode::OverBuffered);
}

#[test]
fn symmetric_unbuffered_diamond_is_clean() {
    let set = diagnose(&diamond(ms(1), ms(1), 1));
    assert!(set.is_empty(), "unexpected diagnostics: {set}");
}

fn two_task_chain(tp: i64, tc: i64) -> CauseEffectGraph {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let p = b.add_task(TaskSpec::periodic("p", ms(tp)));
    let c = b.add_task(TaskSpec::periodic("c", ms(tc)).execution(ms(1), ms(1)).on_ecu(e));
    b.connect(p, c);
    b.build().expect("fixture builds")
}

#[test]
fn d008_oversampled_channel() {
    let set = diagnose(&two_task_chain(10, 30));
    assert_once(&set, DiagCode::OversampledChannel);
}

#[test]
fn d009_undersampled_channel() {
    let set = diagnose(&two_task_chain(100, 10));
    assert_once(&set, DiagCode::UndersampledChannel);
}

#[test]
fn d010_non_harmonic_channel() {
    let set = diagnose(&two_task_chain(20, 50));
    assert_once(&set, DiagCode::NonHarmonicChannel);
}

/// Every code in the vocabulary has a fixture above; this meta-check keeps
/// the file honest if a `D0xx` is ever added without one.
#[test]
fn all_codes_have_fixtures() {
    let mut covered: Vec<DiagCode> = Vec::new();
    let fixtures: Vec<DiagnosticSet> = vec![
        {
            let mut b = SystemBuilder::new();
            let e = b.add_ecu("e");
            let t = b.add_task(TaskSpec::periodic("t", ms(10)).execution(ms(7), ms(7)).on_ecu(e));
            let u = b.add_task(TaskSpec::periodic("u", ms(10)).execution(ms(7), ms(7)).on_ecu(e));
            b.connect(t, u);
            diagnose(&b.build().expect("builds"))
        },
        analyze_graph(&diamond(ms(1), ms(1), 1), &DiagConfig { chain_limit: 1 }),
        diagnose(&diamond(ms(1), ms(1), 3)),
        diagnose(&two_task_chain(10, 30)),
        diagnose(&two_task_chain(100, 10)),
        diagnose(&two_task_chain(20, 50)),
    ];
    for set in &fixtures {
        for d in set.as_slice() {
            if !covered.contains(&d.code) {
                covered.push(d.code);
            }
        }
    }
    for code in [
        DiagCode::EcuOverloaded,
        DiagCode::ChainBudgetExceeded,
        DiagCode::OverBuffered,
        DiagCode::OversampledChannel,
        DiagCode::UndersampledChannel,
        DiagCode::NonHarmonicChannel,
    ] {
        assert!(covered.contains(&code), "{code} not covered");
    }
}
