//! Property: seeded schedulable WATERS-style graphs never carry
//! Error-severity diagnostics — the generators' acceptance test
//! (schedulability) implies every theorem precondition the analyzer
//! grades as an error.

use disparity_analyzer::{analyze_graph, DiagConfig, Severity};
use disparity_rng::rngs::StdRng;
use disparity_workload::chains::schedulable_two_chain_system;
use disparity_workload::graphgen::{schedulable_random_system, GraphGenConfig};

#[test]
fn schedulable_random_graphs_have_no_error_diagnostics() {
    let config = DiagConfig::default();
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0xD1A6 ^ seed);
        let gen = GraphGenConfig {
            n_tasks: 8 + (seed as usize % 5) * 4,
            n_ecus: 3,
            max_sources: Some(3),
            target_utilization: Some(0.5),
            ..GraphGenConfig::default()
        };
        let Ok(graph) = schedulable_random_system(gen, &mut rng, 50) else {
            continue;
        };
        let set = analyze_graph(&graph, &config);
        assert_eq!(
            set.error_count(),
            0,
            "seed {seed}: schedulable graph reported errors: {}",
            set.with_severity(Severity::Error)
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn schedulable_two_chain_systems_have_no_error_diagnostics() {
    let config = DiagConfig::default();
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x2CAB ^ seed);
        let len = 4 + (seed as usize % 4) * 2;
        let Ok(sys) = schedulable_two_chain_system(len, 3, &mut rng, 50) else {
            continue;
        };
        let set = analyze_graph(&sys.graph, &config);
        assert_eq!(set.error_count(), 0, "seed {seed}: {set}");
    }
}
