//! Funnel (layered pipeline) graph generation.
//!
//! Realistic automotive pipelines (the paper's Fig. 1) are *funnels*:
//! several sensors feed progressively narrower fusion/planning/control
//! stages, so every pair of chains to the sink shares a long suffix. This
//! is precisely the regime where the fork-join analysis (Theorem 2 plus
//! the last-joint-task truncation) visibly outperforms the independent
//! bound — on unstructured G(n, m) graphs the critical chain pair rarely
//! shares structure and the two bounds tie (see EXPERIMENTS.md).
//!
//! A funnel is described by its stage widths, e.g. `[4, 2, 2, 1]`: four
//! sensors, two fusion tasks, two planners, one sink. Every task in stage
//! `i+1` consumes from `min(width_i, fan_in)` random tasks of stage `i`,
//! and every stage-`i` task feeds at least one stage-`i+1` task.

use disparity_model::builder::SystemBuilder;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::{EcuId, TaskId};
use disparity_model::task::TaskSpec;
use disparity_sched::schedulability::analyze;
use disparity_rng::Rng;

use crate::error::WorkloadError;
use crate::graphgen::scale_to_utilization;
use crate::waters::{paper_bins, sample_bin, sample_execution};

/// Parameters for [`funnel_system`].
#[derive(Debug, Clone, PartialEq)]
pub struct FunnelConfig {
    /// Number of tasks per stage, sensors first. The final stage should be
    /// `1` for a single sink. Must contain at least two stages.
    pub stage_widths: Vec<usize>,
    /// Maximum inputs per consumer task.
    pub fan_in: usize,
    /// Number of processor ECUs.
    pub n_ecus: usize,
    /// Per-ECU utilization target (see
    /// [`crate::graphgen::GraphGenConfig::target_utilization`]).
    pub target_utilization: Option<f64>,
}

impl Default for FunnelConfig {
    fn default() -> Self {
        FunnelConfig {
            stage_widths: vec![4, 3, 2, 1],
            fan_in: 2,
            n_ecus: 4,
            target_utilization: Some(0.45),
        }
    }
}

impl FunnelConfig {
    /// A funnel with roughly `n_tasks` tasks: width halves per stage from
    /// `⌈n/3⌉` sensors down to a single sink.
    #[must_use]
    pub fn with_approximate_size(n_tasks: usize) -> Self {
        let mut widths = Vec::new();
        let mut remaining = n_tasks.max(3);
        let mut width = (n_tasks / 3).max(2);
        while remaining > 0 && width > 1 {
            let w = width.min(remaining);
            widths.push(w);
            remaining -= w;
            width = (width / 2).max(1);
        }
        widths.extend(std::iter::repeat_n(1, remaining));
        if widths.last() != Some(&1) {
            widths.push(1);
        }
        FunnelConfig {
            stage_widths: widths,
            ..Default::default()
        }
    }

    /// Total number of tasks in the funnel.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.stage_widths.iter().sum()
    }
}

/// Generates a funnel-shaped cause-effect graph with WATERS parameters.
///
/// Stage-0 tasks are zero-cost stimuli; all others are WATERS-sampled
/// computations on random ECUs.
///
/// # Errors
///
/// [`WorkloadError::TooSmall`] if fewer than two stages (or an empty
/// stage) are requested.
///
/// # Examples
///
/// ```
/// use disparity_workload::funnel::{funnel_system, FunnelConfig};
/// use disparity_rng::SeedableRng;
///
/// let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(1);
/// let g = funnel_system(&FunnelConfig::default(), &mut rng)?;
/// assert_eq!(g.sources().len(), 4);
/// assert_eq!(g.sinks().len(), 1);
/// # Ok::<(), disparity_workload::error::WorkloadError>(())
/// ```
pub fn funnel_system<R: Rng + ?Sized>(
    config: &FunnelConfig,
    rng: &mut R,
) -> Result<CauseEffectGraph, WorkloadError> {
    if config.stage_widths.len() < 2 || config.stage_widths.contains(&0) {
        return Err(WorkloadError::TooSmall {
            requested: config.stage_widths.len(),
            minimum: 2,
        });
    }
    let bins = paper_bins();
    let n_ecus = config.n_ecus.max(1);

    // Sample all specs first (utilization scaling needs the full picture).
    let mut specs = Vec::with_capacity(config.task_count());
    let mut stages: Vec<Vec<usize>> = Vec::with_capacity(config.stage_widths.len());
    for (stage_idx, &width) in config.stage_widths.iter().enumerate() {
        let mut stage = Vec::with_capacity(width);
        for k in 0..width {
            let bin = sample_bin(bins, rng);
            let mut spec = TaskSpec::periodic(format!("s{stage_idx}_{k}"), bin.period);
            if stage_idx > 0 {
                let (bcet, wcet) = sample_execution(bin, rng);
                spec = spec
                    .execution(bcet, wcet)
                    .on_ecu(EcuId::from_index(rng.gen_range(0..n_ecus)));
            }
            stage.push(specs.len());
            specs.push(spec);
        }
        stages.push(stage);
    }
    if let Some(target) = config.target_utilization {
        scale_to_utilization(&mut specs, target);
    }

    let mut b = SystemBuilder::new();
    for i in 0..n_ecus {
        let _ = b.add_ecu(format!("ecu{i}"));
    }
    let ids: Vec<TaskId> = specs.into_iter().map(|s| b.add_task(s)).collect();

    // Wire adjacent stages: each consumer picks `fan_in` distinct
    // producers; uncovered producers are then attached to random consumers.
    for w in stages.windows(2) {
        let (producers, consumers) = (&w[0], &w[1]);
        let mut covered = vec![false; producers.len()];
        for &c in consumers {
            let fan_in = config.fan_in.max(1).min(producers.len());
            let mut picks: Vec<usize> = (0..producers.len()).collect();
            for _ in 0..fan_in {
                let i = rng.gen_range(0..picks.len());
                let p = picks.swap_remove(i);
                covered[p] = true;
                b.connect(ids[producers[p]], ids[c]);
            }
        }
        for (p, &is_covered) in covered.iter().enumerate() {
            if !is_covered {
                let c = consumers[rng.gen_range(0..consumers.len())];
                b.connect(ids[producers[p]], ids[c]);
            }
        }
    }
    Ok(b.build()?)
}

/// Draws funnels until one is fully schedulable.
///
/// # Errors
///
/// * [`WorkloadError::TooSmall`] as for [`funnel_system`].
/// * [`WorkloadError::UnschedulableAfterRetries`] when the budget runs out.
pub fn schedulable_funnel_system<R: Rng + ?Sized>(
    config: &FunnelConfig,
    rng: &mut R,
    max_attempts: usize,
) -> Result<CauseEffectGraph, WorkloadError> {
    for _ in 0..max_attempts {
        let graph = funnel_system(config, rng)?;
        if let Ok(report) = analyze(&graph) {
            if report.all_schedulable() {
                return Ok(graph);
            }
        }
    }
    Err(WorkloadError::UnschedulableAfterRetries {
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_rng::rngs::StdRng;

    #[test]
    fn funnel_shape_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FunnelConfig {
            stage_widths: vec![5, 3, 1],
            ..Default::default()
        };
        let g = funnel_system(&cfg, &mut rng).unwrap();
        assert_eq!(g.task_count(), 9);
        assert_eq!(g.sources().len(), 5);
        assert_eq!(g.sinks().len(), 1);
        // Every source is a zero-cost stimulus.
        for s in g.sources() {
            assert!(g.task(s).is_zero_cost());
        }
    }

    #[test]
    fn every_producer_is_consumed() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = FunnelConfig {
            stage_widths: vec![6, 2, 2, 1],
            ..Default::default()
        };
        let g = funnel_system(&cfg, &mut rng).unwrap();
        // Single sink means every non-sink task has an outgoing edge.
        let sink = g.sinks()[0];
        for t in g.tasks() {
            if t.id() != sink {
                assert!(
                    !g.out_channels(t.id()).is_empty(),
                    "{} is dangling",
                    t.name()
                );
            }
        }
    }

    #[test]
    fn approximate_size_constructor() {
        let cfg = FunnelConfig::with_approximate_size(20);
        assert_eq!(cfg.task_count(), 20);
        assert_eq!(*cfg.stage_widths.last().unwrap(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let g = funnel_system(&cfg, &mut rng).unwrap();
        assert_eq!(g.task_count(), 20);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        for widths in [vec![], vec![3], vec![3, 0, 1]] {
            let cfg = FunnelConfig {
                stage_widths: widths,
                ..Default::default()
            };
            assert!(matches!(
                funnel_system(&cfg, &mut rng),
                Err(WorkloadError::TooSmall { .. })
            ));
        }
    }

    #[test]
    fn schedulable_variant_passes() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 100).unwrap();
        assert!(analyze(&g).unwrap().all_schedulable());
    }
}
