//! Release-offset randomization.
//!
//! The paper's evaluation simulates each generated graph "10 times with
//! different randomly generated offsets", each task's offset drawn from
//! `[1, T_i]`. Offsets only matter to the simulator — the analytical
//! bounds are offset-oblivious — so randomization mutates a clone of the
//! graph in place.

use disparity_model::graph::CauseEffectGraph;
use disparity_model::time::Duration;
use disparity_rng::Rng;

/// Returns a clone of `graph` whose every task has a fresh uniformly random
/// offset in `[0, T_i)`.
///
/// (The paper says `[1, T_i]`; modulo the period the two conventions
/// describe the same set of phasings.)
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_workload::offsets::randomize_offsets;
/// use disparity_rng::SeedableRng;
///
/// let mut b = SystemBuilder::new();
/// let t = b.add_task(TaskSpec::periodic("t", Duration::from_millis(10)));
/// let g = b.build()?;
/// let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(5);
/// let shifted = randomize_offsets(&g, &mut rng);
/// assert!(shifted.task(t).offset() < Duration::from_millis(10));
/// # Ok::<(), disparity_model::error::ModelError>(())
/// ```
#[must_use]
pub fn randomize_offsets<R: Rng + ?Sized>(
    graph: &CauseEffectGraph,
    rng: &mut R,
) -> CauseEffectGraph {
    let mut out = graph.clone();
    for task in graph.tasks() {
        let t = task.period().as_nanos();
        let offset = Duration::from_nanos(rng.gen_range(0..t));
        if out.set_task_offset(task.id(), offset).is_err() {
            unreachable!("task ids come from this graph")
        }
    }
    out
}

/// Returns a clone of `graph` with all offsets reset to zero (synchronous
/// release).
#[must_use]
pub fn zero_offsets(graph: &CauseEffectGraph) -> CauseEffectGraph {
    let mut out = graph.clone();
    for task in graph.tasks() {
        if out.set_task_offset(task.id(), Duration::ZERO).is_err() {
            unreachable!("task ids come from this graph")
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_rng::rngs::StdRng;

    fn sample_graph() -> CauseEffectGraph {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let ms = Duration::from_millis;
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s, t);
        b.build().unwrap()
    }

    #[test]
    fn offsets_stay_below_period() {
        let g = sample_graph();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let shifted = randomize_offsets(&g, &mut rng);
            for task in shifted.tasks() {
                assert!(!task.offset().is_negative());
                assert!(task.offset() < task.period());
            }
        }
    }

    #[test]
    fn structure_is_untouched() {
        let g = sample_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let shifted = randomize_offsets(&g, &mut rng);
        assert_eq!(shifted.task_count(), g.task_count());
        assert_eq!(shifted.channel_count(), g.channel_count());
        for (a, b) in g.tasks().iter().zip(shifted.tasks()) {
            assert_eq!(a.period(), b.period());
            assert_eq!(a.wcet(), b.wcet());
            assert_eq!(a.priority(), b.priority());
        }
    }

    #[test]
    fn zeroing_resets() {
        let g = sample_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let shifted = randomize_offsets(&g, &mut rng);
        let zeroed = zero_offsets(&shifted);
        assert!(zeroed.tasks().iter().all(|t| t.offset().is_zero()));
    }
}
