//! Synthetic workload generation for the time-disparity evaluation.
//!
//! Reproduces the paper's §V workload pipeline:
//!
//! * [`waters`] — the WATERS 2015 automotive benchmark tables (period
//!   distribution, ACET, BCET/WCET factor ranges);
//! * [`graphgen`] — `dense_gnm_random_graph`-style single-sink DAGs for
//!   Fig. 6(a)/(b);
//! * [`chains`] — two-chain merge topologies for Fig. 6(c)/(d);
//! * [`offsets`] — per-run release-offset randomization.
//!
//! # Examples
//!
//! ```
//! use disparity_workload::prelude::*;
//! use disparity_rng::SeedableRng;
//!
//! let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(42);
//! let graph = schedulable_random_system(
//!     GraphGenConfig { n_tasks: 15, ..Default::default() },
//!     &mut rng,
//!     100,
//! )?;
//! let run_instance = randomize_offsets(&graph, &mut rng);
//! assert_eq!(run_instance.task_count(), 15);
//! # Ok::<(), disparity_workload::error::WorkloadError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chains;
pub mod error;
pub mod funnel;
pub mod graphgen;
pub mod offsets;
pub mod waters;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::chains::{
        schedulable_two_chain_system, schedulable_two_chain_system_scaled, two_chain_system,
        two_chain_system_scaled, TwoChainSystem,
    };
    pub use crate::error::WorkloadError;
    pub use crate::funnel::{funnel_system, schedulable_funnel_system, FunnelConfig};
    pub use crate::graphgen::{random_system, schedulable_random_system, GraphGenConfig};
    pub use crate::offsets::{randomize_offsets, zero_offsets};
    pub use crate::waters::{paper_bins, sample_bin, sample_execution, PeriodBin, ALL_BINS};
}
