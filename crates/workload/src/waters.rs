//! WATERS 2015 automotive benchmark parameters (Kramer et al., "Real World
//! Automotive Benchmark for Free").
//!
//! The paper generates its evaluation workloads from three tables of that
//! benchmark:
//!
//! * **Table III** — the distribution of task periods
//!   (the paper restricts itself to the subset
//!   `{1, 2, 5, 10, 20, 50, 100, 200} ms`, renormalized);
//! * **Table IV** — the average-case execution time (ACET) per period bin;
//! * **Table V** — per-bin factor ranges turning the ACET into BCET and
//!   WCET: `BCET = f_b·ACET`, `WCET = f_w·ACET` with `f_b`, `f_w` drawn
//!   uniformly from the bin's ranges.
//!
//! The constants below are transcribed from the published benchmark. Minor
//! transcription imprecision would shift absolute numbers, not the shape of
//! any comparison, because every analysis and the simulator consume the
//! same sampled tasks.

use disparity_model::time::Duration;
use disparity_rng::Rng;

/// One row of the WATERS tables: a period bin with its sampling metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodBin {
    /// The bin's activation period.
    pub period: Duration,
    /// Share of tasks with this period (Table III), as a weight.
    pub share: f64,
    /// Average-case execution time (Table IV).
    pub acet: Duration,
    /// `(min, max)` BCET factor range (Table V).
    pub bcet_factor: (f64, f64),
    /// `(min, max)` WCET factor range (Table V).
    pub wcet_factor: (f64, f64),
}

const fn us(micros: i64) -> Duration {
    Duration::from_micros(micros)
}

const fn ns(nanos: i64) -> Duration {
    Duration::from_nanos(nanos)
}

/// The full WATERS 2015 period table (including the 1000 ms bin the paper
/// does not use).
pub const ALL_BINS: [PeriodBin; 9] = [
    PeriodBin {
        period: Duration::from_millis(1),
        share: 0.03,
        acet: us(5),
        bcet_factor: (0.19, 0.92),
        wcet_factor: (1.30, 29.11),
    },
    PeriodBin {
        period: Duration::from_millis(2),
        share: 0.02,
        acet: ns(4_200),
        bcet_factor: (0.12, 0.89),
        wcet_factor: (1.54, 19.04),
    },
    PeriodBin {
        period: Duration::from_millis(5),
        share: 0.02,
        acet: ns(11_040),
        bcet_factor: (0.17, 0.94),
        wcet_factor: (1.13, 18.44),
    },
    PeriodBin {
        period: Duration::from_millis(10),
        share: 0.25,
        acet: ns(10_090),
        bcet_factor: (0.05, 0.99),
        wcet_factor: (1.06, 30.03),
    },
    PeriodBin {
        period: Duration::from_millis(20),
        share: 0.25,
        acet: ns(8_740),
        bcet_factor: (0.11, 0.98),
        wcet_factor: (1.06, 15.61),
    },
    PeriodBin {
        period: Duration::from_millis(50),
        share: 0.03,
        acet: ns(17_560),
        bcet_factor: (0.32, 0.95),
        wcet_factor: (1.13, 7.76),
    },
    PeriodBin {
        period: Duration::from_millis(100),
        share: 0.20,
        acet: ns(10_530),
        bcet_factor: (0.09, 0.99),
        wcet_factor: (1.02, 8.88),
    },
    PeriodBin {
        period: Duration::from_millis(200),
        share: 0.01,
        acet: ns(2_560),
        bcet_factor: (0.45, 0.98),
        wcet_factor: (1.03, 4.90),
    },
    PeriodBin {
        period: Duration::from_millis(1000),
        share: 0.04,
        acet: ns(430),
        bcet_factor: (0.68, 0.80),
        wcet_factor: (1.84, 4.75),
    },
];

/// The eight bins the paper samples from
/// (`{1, 2, 5, 10, 20, 50, 100, 200} ms`).
#[must_use]
pub fn paper_bins() -> &'static [PeriodBin] {
    &ALL_BINS[..8]
}

/// Samples a period bin weighted by the Table III shares (renormalized over
/// the given bins).
///
/// # Panics
///
/// Panics if `bins` is empty.
pub fn sample_bin<'b, R: Rng + ?Sized>(bins: &'b [PeriodBin], rng: &mut R) -> &'b PeriodBin {
    assert!(!bins.is_empty(), "need at least one period bin");
    let total: f64 = bins.iter().map(|b| b.share).sum();
    let mut point = rng.gen_range(0.0..total);
    let Some((last, head)) = bins.split_last() else {
        unreachable!("guarded by the assert above")
    };
    for bin in head {
        if point < bin.share {
            return bin;
        }
        point -= bin.share;
    }
    last
}

/// Draws `(BCET, WCET)` for a task of the given bin: factors are sampled
/// uniformly from Table V's ranges and applied to the bin's ACET. The
/// result always satisfies `1ns ≤ BCET ≤ WCET`.
pub fn sample_execution<R: Rng + ?Sized>(bin: &PeriodBin, rng: &mut R) -> (Duration, Duration) {
    let fb = rng.gen_range(bin.bcet_factor.0..=bin.bcet_factor.1);
    let fw = rng.gen_range(bin.wcet_factor.0..=bin.wcet_factor.1);
    let acet = bin.acet.as_nanos() as f64;
    let bcet = Duration::from_nanos_f64((acet * fb).round().max(1.0));
    let wcet = Duration::from_nanos_f64((acet * fw).round().max(1.0));
    (bcet.min(wcet), wcet.max(bcet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_rng::rngs::StdRng;

    #[test]
    fn paper_subset_has_eight_bins_in_order() {
        let bins = paper_bins();
        assert_eq!(bins.len(), 8);
        let periods: Vec<i64> = bins.iter().map(|b| b.period.as_millis()).collect();
        assert_eq!(periods, vec![1, 2, 5, 10, 20, 50, 100, 200]);
    }

    #[test]
    fn factors_are_ordered_and_shares_positive() {
        for b in &ALL_BINS {
            assert!(b.bcet_factor.0 <= b.bcet_factor.1);
            assert!(b.wcet_factor.0 <= b.wcet_factor.1);
            assert!(
                b.bcet_factor.1 <= b.wcet_factor.0,
                "BCET below WCET for {b:?}"
            );
            assert!(b.share > 0.0);
            assert!(b.acet.is_positive());
        }
    }

    #[test]
    fn sampling_respects_distribution_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let bins = paper_bins();
        let mut counts = vec![0usize; bins.len()];
        let n = 20_000;
        for _ in 0..n {
            let bin = sample_bin(bins, &mut rng);
            let idx = bins.iter().position(|b| b.period == bin.period).unwrap();
            counts[idx] += 1;
        }
        let total_share: f64 = bins.iter().map(|b| b.share).sum();
        for (i, bin) in bins.iter().enumerate() {
            let expected = bin.share / total_share;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.02,
                "bin {}ms: observed {observed:.3} expected {expected:.3}",
                bin.period.as_millis()
            );
        }
    }

    #[test]
    fn execution_sampling_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(2);
        for bin in &ALL_BINS {
            for _ in 0..500 {
                let (b, w) = sample_execution(bin, &mut rng);
                assert!(b.is_positive());
                assert!(b <= w);
                assert!(
                    w <= bin.period,
                    "WCET {w} above period {} for bin",
                    bin.period
                );
            }
        }
    }
}
