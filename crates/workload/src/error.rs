//! Error types for workload generation.

use core::fmt;

use disparity_model::error::ModelError;

/// Errors produced while generating synthetic systems.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// At least two tasks are required for a cause-effect graph with an
    /// edge, and chain generators need a minimum length.
    TooSmall {
        /// The requested size.
        requested: usize,
        /// The smallest supported size.
        minimum: usize,
    },
    /// The generated system never passed the schedulability test within the
    /// retry budget; lower the task count or raise the ECU count.
    UnschedulableAfterRetries {
        /// How many candidate systems were drawn.
        attempts: usize,
    },
    /// The model rejected a generated structure (a generator bug if it ever
    /// surfaces).
    Model(ModelError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::TooSmall { requested, minimum } => {
                write!(f, "requested size {requested} below minimum {minimum}")
            }
            WorkloadError::UnschedulableAfterRetries { attempts } => {
                write!(f, "no schedulable system found in {attempts} attempts")
            }
            WorkloadError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for WorkloadError {
    fn from(e: ModelError) -> Self {
        WorkloadError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!WorkloadError::TooSmall {
            requested: 1,
            minimum: 2
        }
        .to_string()
        .is_empty());
        assert!(!WorkloadError::UnschedulableAfterRetries { attempts: 3 }
            .to_string()
            .is_empty());
        assert!(!WorkloadError::from(ModelError::EmptyGraph)
            .to_string()
            .is_empty());
    }
}
