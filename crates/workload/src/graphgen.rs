//! Random cause-effect graph generation.
//!
//! The paper builds its Fig. 6(a)/(b) workloads with NetworkX's
//! `dense_gnm_random_graph(n, m)` and patches each graph to have a single
//! sink. This module reimplements that construction:
//!
//! 1. draw `m` distinct undirected pairs `{i, j}` uniformly;
//! 2. orient every edge from the lower to the higher index (acyclic by
//!    construction);
//! 3. redirect sinkless ends: every vertex other than `n−1` that has no
//!    outgoing edge gets an edge to vertex `n−1`, making it the unique
//!    sink;
//! 4. vertices without incoming edges become zero-cost source stimuli; all
//!    other vertices get WATERS-sampled execution times and a uniformly
//!    random ECU.
//!
//! The paper does not state `m` or the ECU count; the defaults
//! (`m = ⌊1.8·n⌋`, 4 ECUs) are documented in `DESIGN.md` and exposed as
//! knobs here.

use std::collections::BTreeSet;

use disparity_model::builder::SystemBuilder;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::EcuId;
use disparity_model::task::TaskSpec;
use disparity_sched::schedulability::analyze;
use disparity_rng::Rng;

use crate::error::WorkloadError;
use crate::waters::{paper_bins, sample_bin, sample_execution};

/// Parameters for [`random_system`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphGenConfig {
    /// Number of tasks `n` (the paper sweeps 5–35).
    pub n_tasks: usize,
    /// Number of undirected pairs to draw; `None` means `⌊1.8·n⌋`
    /// (clamped to the maximum `n(n−1)/2`).
    pub n_edges: Option<usize>,
    /// Number of processor ECUs tasks are mapped onto.
    pub n_ecus: usize,
    /// Maximum number of source tasks. Vertices beyond the budget that
    /// would have no incoming edge are patched with an edge from a random
    /// earlier vertex. Fewer sources force chains to overlap — the regime
    /// in which the paper's fork-join analysis (S-diff) visibly improves
    /// on the independent bound (P-diff).
    pub max_sources: Option<usize>,
    /// Scale execution times so each ECU reaches this utilization.
    ///
    /// The raw WATERS execution times are microseconds against millisecond
    /// periods, which makes every backward-time bound an almost exact sum
    /// of whole periods and erases the quantization gains of Theorem 2.
    /// Scaling to a realistic load restores period-scale response times.
    /// Per-task WCETs are capped at a third of the smallest period on
    /// their ECU so non-preemptive blocking stays schedulable.
    pub target_utilization: Option<f64>,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        GraphGenConfig {
            n_tasks: 20,
            n_edges: None,
            n_ecus: 4,
            max_sources: None,
            target_utilization: None,
        }
    }
}

impl GraphGenConfig {
    /// The effective edge count for this configuration.
    #[must_use]
    pub fn effective_edges(&self) -> usize {
        let max = self.n_tasks * (self.n_tasks.saturating_sub(1)) / 2;
        self.n_edges.unwrap_or(self.n_tasks * 9 / 5).min(max)
    }
}

/// Generates one random single-sink system with WATERS task parameters.
///
/// Offsets are all zero; use [`crate::offsets::randomize_offsets`] before
/// simulating. Schedulability is *not* checked — see
/// [`schedulable_random_system`].
///
/// # Errors
///
/// [`WorkloadError::TooSmall`] if fewer than 2 tasks are requested.
///
/// # Examples
///
/// ```
/// use disparity_workload::graphgen::{random_system, GraphGenConfig};
/// use disparity_rng::SeedableRng;
///
/// let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(1);
/// let g = random_system(GraphGenConfig { n_tasks: 12, ..Default::default() }, &mut rng)?;
/// assert_eq!(g.task_count(), 12);
/// assert_eq!(g.sinks().len(), 1);
/// # Ok::<(), disparity_workload::error::WorkloadError>(())
/// ```
pub fn random_system<R: Rng + ?Sized>(
    config: GraphGenConfig,
    rng: &mut R,
) -> Result<CauseEffectGraph, WorkloadError> {
    if config.n_tasks < 2 {
        return Err(WorkloadError::TooSmall {
            requested: config.n_tasks,
            minimum: 2,
        });
    }
    let n = config.n_tasks;
    let m = config.effective_edges();

    // G(n, m): m distinct pairs, oriented low -> high.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    while edges.len() < m {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    // Single sink: every non-last vertex without outgoing edges gets an
    // edge to a uniformly random later vertex. Processing vertices in
    // ascending order guarantees the patch converges (the added edge may
    // create a new sinkless vertex only at a higher index, which is
    // patched in turn), leaving vertex n−1 as the unique sink. Routing to
    // a random successor rather than straight to n−1 keeps the graphs
    // deep, so chains overlap the way the paper's dense G(n, m) graphs do.
    for v in 0..n - 1 {
        let has_out = edges.range((v, 0)..(v + 1, 0)).next().is_some();
        if !has_out {
            let target = rng.gen_range(v + 1..=n - 1);
            edges.insert((v, target));
        }
    }

    // Optionally cap the number of sources: patch later in-degree-0
    // vertices with an edge from a random earlier vertex (vertex 0 always
    // stays a source).
    if let Some(budget) = config.max_sources {
        let mut seen_sources = 0usize;
        for v in 1..n {
            let has_in = edges.iter().any(|&(_, b)| b == v);
            if !has_in {
                seen_sources += 1;
                if seen_sources >= budget {
                    let from = rng.gen_range(0..v);
                    edges.insert((from, v));
                }
            }
        }
    }

    let mut has_in = vec![false; n];
    for &(_, b) in &edges {
        has_in[b] = true;
    }

    let mut builder = SystemBuilder::new();
    let ecus: Vec<EcuId> = (0..config.n_ecus.max(1))
        .map(|i| builder.add_ecu(format!("ecu{i}")))
        .collect();
    let bins = paper_bins();
    let mut specs: Vec<TaskSpec> = Vec::with_capacity(n);
    for (v, &v_has_in) in has_in.iter().enumerate() {
        let bin = sample_bin(bins, rng);
        let mut spec = TaskSpec::periodic(format!("t{v}"), bin.period);
        if v_has_in {
            let (bcet, wcet) = sample_execution(bin, rng);
            let ecu = ecus[rng.gen_range(0..ecus.len())];
            spec = spec.execution(bcet, wcet).on_ecu(ecu);
        }
        specs.push(spec);
    }
    if let Some(target) = config.target_utilization {
        scale_to_utilization(&mut specs, target);
    }
    for spec in specs {
        builder.add_task(spec);
    }
    for &(a, b) in &edges {
        builder.connect(
            disparity_model::ids::TaskId::from_index(a),
            disparity_model::ids::TaskId::from_index(b),
        );
    }
    Ok(builder.build()?)
}

/// Scales execution times per ECU so the total utilization approaches
/// `target`, preserving each task's BCET/WCET ratio. WCETs are capped at a
/// third of the smallest period mapped to the same ECU, which keeps
/// non-preemptive blocking survivable; saturated caps mean the target may
/// not be reached exactly.
pub fn scale_to_utilization(specs: &mut [TaskSpec], target: f64) {
    use disparity_model::time::Duration;
    use std::collections::BTreeMap;
    let mut per_ecu: BTreeMap<EcuId, Vec<usize>> = BTreeMap::new();
    for (i, s) in specs.iter().enumerate() {
        if let Some(ecu) = s.ecu {
            if s.wcet.is_positive() {
                per_ecu.entry(ecu).or_default().push(i);
            }
        }
    }
    for members in per_ecu.values() {
        let util: f64 = members
            .iter()
            .map(|&i| specs[i].wcet.as_nanos() as f64 / specs[i].period.as_nanos() as f64)
            .sum();
        if util <= 0.0 {
            continue;
        }
        let Some(min_period) = members.iter().map(|&i| specs[i].period).min() else {
            continue;
        };
        let cap = min_period / 3;
        let factor = target / util;
        for &i in members {
            let spec = &mut specs[i];
            let ratio = if spec.wcet.is_positive() {
                spec.bcet.as_nanos() as f64 / spec.wcet.as_nanos() as f64
            } else {
                0.0
            };
            let wcet = spec
                .wcet
                .scale(factor)
                .max(Duration::from_nanos(1))
                .min(cap)
                .min(spec.period);
            let bcet = wcet
                .scale(ratio)
                .max(Duration::from_nanos(1))
                .min(wcet);
            spec.wcet = wcet;
            spec.bcet = bcet;
        }
    }
}

/// Draws systems until one passes the full response-time schedulability
/// test (the paper's standing assumption), up to `max_attempts` tries.
///
/// # Errors
///
/// * [`WorkloadError::TooSmall`] as for [`random_system`].
/// * [`WorkloadError::UnschedulableAfterRetries`] when the budget runs out
///   (overloads are treated as failed attempts too).
pub fn schedulable_random_system<R: Rng + ?Sized>(
    config: GraphGenConfig,
    rng: &mut R,
    max_attempts: usize,
) -> Result<CauseEffectGraph, WorkloadError> {
    for _ in 0..max_attempts {
        let graph = random_system(config, rng)?;
        if let Ok(report) = analyze(&graph) {
            if report.all_schedulable() {
                return Ok(graph);
            }
        }
    }
    Err(WorkloadError::UnschedulableAfterRetries {
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_rng::rngs::StdRng;

    #[test]
    fn generated_graph_is_a_single_sink_dag() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [5usize, 10, 20, 35] {
            let g = random_system(
                GraphGenConfig {
                    n_tasks: n,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap();
            assert_eq!(g.task_count(), n);
            assert_eq!(g.sinks().len(), 1, "n={n}");
            assert!(!g.sources().is_empty());
            // DAG property is enforced by the builder; reaching here is the proof.
        }
    }

    #[test]
    fn sources_are_zero_cost_and_unmapped() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_system(
            GraphGenConfig {
                n_tasks: 15,
                ..Default::default()
            },
            &mut rng,
        )
        .unwrap();
        for s in g.sources() {
            let t = g.task(s);
            assert!(t.is_zero_cost());
            assert!(t.ecu().is_none());
        }
        for v in g.tasks() {
            if !g.is_source(v.id()) {
                assert!(v.wcet().is_positive());
                assert!(v.ecu().is_some());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            random_system(
                GraphGenConfig {
                    n_tasks: 18,
                    ..Default::default()
                },
                &mut rng,
            )
            .unwrap()
        };
        assert_eq!(gen(5), gen(5));
    }

    #[test]
    fn too_small_is_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            random_system(
                GraphGenConfig {
                    n_tasks: 1,
                    ..Default::default()
                },
                &mut rng
            ),
            Err(WorkloadError::TooSmall { .. })
        ));
    }

    #[test]
    fn edge_budget_is_clamped() {
        let cfg = GraphGenConfig {
            n_tasks: 4,
            n_edges: Some(100),
            n_ecus: 2,
            ..Default::default()
        };
        assert_eq!(cfg.effective_edges(), 6);
        let mut rng = StdRng::seed_from_u64(0);
        let g = random_system(cfg, &mut rng).unwrap();
        assert!(g.channel_count() <= 6 + 3, "sink patching adds at most n-1");
    }

    #[test]
    fn utilization_scaling_approaches_target() {
        use disparity_sched::utilization::ecu_utilization;
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = GraphGenConfig {
            n_tasks: 24,
            target_utilization: Some(0.4),
            ..Default::default()
        };
        let g = random_system(cfg, &mut rng).unwrap();
        for ecu in g.ecus() {
            let u = ecu_utilization(&g, ecu.id());
            if u == 0.0 {
                continue; // no costly tasks landed on this ECU
            }
            // Caps may prevent reaching the target exactly, but never
            // overshoot it by more than rounding.
            assert!(u <= 0.4 + 1e-6, "{u}");
        }
        // BCET <= WCET and WCET <= period survive scaling (build() passed).
        for t in g.tasks() {
            assert!(t.bcet() <= t.wcet());
            assert!(t.wcet() <= t.period());
        }
    }

    #[test]
    fn utilization_scaling_caps_wcet_for_np_blocking() {
        use disparity_model::time::Duration;
        // One ECU, one 1ms task and one 200ms task: the 200ms task's WCET
        // must stay below a third of the smallest period on the ECU.
        let mut specs = vec![
            TaskSpec::periodic("fast", Duration::from_millis(1))
                .execution(Duration::from_micros(5), Duration::from_micros(50))
                .on_ecu(EcuId::from_index(0)),
            TaskSpec::periodic("slow", Duration::from_millis(200))
                .execution(Duration::from_micros(5), Duration::from_micros(50))
                .on_ecu(EcuId::from_index(0)),
        ];
        scale_to_utilization(&mut specs, 0.9);
        let cap = Duration::from_millis(1) / 3;
        for s in &specs {
            assert!(s.wcet <= cap, "{} exceeds cap {cap}", s.wcet);
            assert!(s.bcet <= s.wcet);
            assert!(s.bcet.is_positive());
        }
    }

    #[test]
    fn max_sources_budget_is_respected() {
        let mut rng = StdRng::seed_from_u64(13);
        for budget in [1usize, 2, 4] {
            for _ in 0..5 {
                let g = random_system(
                    GraphGenConfig {
                        n_tasks: 20,
                        max_sources: Some(budget),
                        ..Default::default()
                    },
                    &mut rng,
                )
                .unwrap();
                assert!(
                    g.sources().len() <= budget,
                    "budget {budget} violated: {} sources",
                    g.sources().len()
                );
            }
        }
    }

    #[test]
    fn schedulable_generator_yields_schedulable_systems() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = schedulable_random_system(
            GraphGenConfig {
                n_tasks: 20,
                ..Default::default()
            },
            &mut rng,
            50,
        )
        .unwrap();
        let report = analyze(&g).unwrap();
        assert!(report.all_schedulable());
    }
}
