//! Small, deterministic, dependency-free pseudo-random number generation.
//!
//! The workspace must build **offline** (no registry access), so the
//! external `rand` crate is replaced by this in-tree module. It provides
//! exactly the API subset the repository uses, with the same call-site
//! shapes (`Rng::gen_range`, `Rng::gen`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`), so swapping the import path is the only change needed.
//!
//! The generator is **xoshiro256\*\*** (Blackman & Vigna), seeded from a
//! single `u64` through **SplitMix64** — the construction the xoshiro
//! authors recommend. It is fast, passes BigCrush, and is fully
//! deterministic per seed, which is all a simulation harness needs. It is
//! *not* cryptographically secure.
//!
//! # Examples
//!
//! ```
//! use disparity_rng::{Rng, SeedableRng};
//!
//! let mut rng = disparity_rng::StdRng::seed_from_u64(7);
//! let die: u64 = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let p: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&p));
//! // Same seed, same stream.
//! let mut again = disparity_rng::StdRng::seed_from_u64(7);
//! let replay: u64 = again.gen_range(1..=6);
//! assert_eq!(replay, die);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use core::ops::{Range, RangeInclusive};

/// Mixes a `u64` into a well-distributed one (SplitMix64 output function).
///
/// Useful on its own for hashing seeds or deriving per-index salts.
#[must_use]
pub const fn splitmix64_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator: a tiny 64-bit state stream used here to
/// expand one `u64` seed into the 256-bit xoshiro state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the stream for a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's standard generator.
///
/// 256 bits of state, period `2^256 − 1`, equidistributed output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state through SplitMix64, as recommended by
    /// the xoshiro authors (never yields the all-zero state).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A source of raw 64-bit randomness. Object-safe.
pub trait RngCore {
    /// Next 64-bit output of the stream.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256StarStar::next_u64(self)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator for a seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256StarStar::seed_from_u64(seed)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// Types [`Rng::gen`] can produce with a uniform/standard distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`Rng::gen_range`] accepts, producing a uniform `T`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` (Lemire's nearly-divisionless method —
/// unbiased, at most a handful of retries).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(bound);
    let mut low = m as u64;
    if low < bound {
        let threshold = bound.wrapping_neg() % bound;
        while low < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(bound);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (self.start as i128 + i128::from(offset)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = if span > u128::from(u64::MAX) {
                    rng.next_u64() // full 64-bit domain
                } else {
                    uniform_below(rng, span as u64)
                };
                (lo as i128 + i128::from(offset)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let unit: $t = Standard::draw(rng);
                let v = self.start + (self.end - self.start) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * 1e-9) } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let unit: $t = Standard::draw(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The convenience methods every call site uses; blanket-implemented for
/// any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (integers, floats, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::draw(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs` so call sites only swap the
/// crate path.
pub mod rngs {
    /// The workspace's standard generator (xoshiro256\*\*).
    ///
    /// Note: this is *not* the same stream as `rand::rngs::StdRng`
    /// (ChaCha12); seeded expectations that depended on the exact stream
    /// were re-pinned when the dependency was replaced.
    pub type StdRng = super::Xoshiro256StarStar;
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_matches_reference_vectors() {
        // Reference: xoshiro256** seeded with SplitMix64(0) per the
        // authors' seeding recommendation; first outputs computed from the
        // public-domain reference implementation.
        let mut sm = SplitMix64::new(0);
        let s0 = sm.next_u64();
        // SplitMix64(0) first output is the mix of the golden-ratio step.
        assert_eq!(s0, 0xE220_A839_7B1D_CDAF);
        let mut rng = Xoshiro256StarStar::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut rng2 = Xoshiro256StarStar::seed_from_u64(0);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_int_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(0..7);
            assert!(v < 7);
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let x: u64 = rng.gen_range(10..=10);
            assert_eq!(x, 10);
        }
    }

    #[test]
    fn gen_range_int_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_range_float_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.0..1.5);
            assert!((0.0..1.5).contains(&v));
            let w: f64 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 60_000;
        let mut counts = [0usize; 6];
        for _ in 0..n {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 6;
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 10,
                "{counts:?}"
            );
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_infers_common_types() {
        let mut rng = StdRng::seed_from_u64(8);
        let _: u64 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn works_through_dyn_and_reference() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(takes_generic(&mut rng) < 100);
        let mut borrowed: &mut StdRng = &mut rng;
        assert!(takes_generic(&mut borrowed) < 100);
    }

    #[test]
    fn splitmix_mix_is_stable() {
        assert_eq!(splitmix64_mix(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64_mix(1), splitmix64_mix(2));
    }
}
