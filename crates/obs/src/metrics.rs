//! Global metrics registry: monotonic counters and log-scale histograms.
//!
//! Like the span recorder, the registry is gated on the global enable
//! flag: [`counter_add`] and [`observe`] return after one relaxed atomic
//! load when recording is off. Histograms use power-of-two buckets, so
//! percentile estimates are exact at bucket boundaries and within a
//! factor of two elsewhere (min/max/count/sum are always exact).
//!
//! **Percentiles are cumulative-since-start.** A [`Histogram`] never
//! forgets: every sample since process start (or the last reset) weighs
//! on `p50/p95/p99` forever, so a latency regression that begins after a
//! long healthy run is averaged away and can stay invisible in the
//! cumulative view for a long time. Live monitoring should read the
//! sliding-window view ([`crate::window::WindowedHistogram`]) alongside
//! the cumulative one; the window-vs-cumulative divergence regression
//! test in `crates/obs/tests` pins down exactly this failure mode.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::recorder::is_enabled;

/// Number of histogram buckets: bucket 0 holds values `<= 0`, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i - 1]`.
const BUCKETS: usize = 65;

struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    histograms: BTreeMap::new(),
});

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    f(&mut REGISTRY
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Add `delta` to the monotonic counter `name`, creating it at zero
/// first if needed. No-op while recording is disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_registry(|reg| {
        if let Some(c) = reg.counters.get_mut(name) {
            *c = c.saturating_add(delta);
        } else {
            reg.counters.insert(name.to_owned(), delta);
        }
    });
}

/// Record `value` into the histogram `name`, creating it if needed.
/// No-op while recording is disabled.
pub fn observe(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    with_registry(|reg| {
        if let Some(h) = reg.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            reg.histograms.insert(name.to_owned(), h);
        }
    });
}

/// Record a duration (as nanoseconds) into the histogram `name`.
/// No-op while recording is disabled.
pub fn observe_duration(name: &str, duration: disparity_model::time::Duration) {
    observe(name, duration.as_nanos());
}

/// Record a closed span's duration into the auto-histogram `span.<name>`.
/// Called by the recorder; spans only close while a guard is live, so
/// this does not re-check the enable flag (disabling mid-span still
/// records the tail, which keeps reports consistent with the trace).
pub(crate) fn observe_span_duration(span_name: &str, dur_ns: i64) {
    with_registry(|reg| {
        let key = format!("span.{span_name}");
        if let Some(h) = reg.histograms.get_mut(&key) {
            h.record(dur_ns);
        } else {
            let mut h = Histogram::new();
            h.record(dur_ns);
            reg.histograms.insert(key, h);
        }
    });
}

/// Discard every counter and histogram.
pub(crate) fn clear() {
    with_registry(|reg| {
        reg.counters.clear();
        reg.histograms.clear();
    });
}

/// Point-in-time copy of the registry, taken with [`snapshot`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram name → summary statistics, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Copy the current counters and histogram summaries (non-draining).
pub fn snapshot() -> MetricsSnapshot {
    with_registry(|reg| MetricsSnapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect(),
    })
}

/// A log-scale histogram over `i64` samples.
///
/// Standalone use (e.g. the bench shim summarising samples without
/// touching the global registry) is supported: [`Histogram::new`],
/// [`Histogram::record`], [`Histogram::summary`].
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: i64,
    min: i64,
    max: i64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("sum", &self.sum)
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    fn bucket_index(value: i64) -> usize {
        if value <= 0 {
            0
        } else {
            64 - (value as u64).leading_zeros() as usize
        }
    }

    /// Upper bound of bucket `i` (inclusive); `0` for the `<= 0` bucket.
    fn bucket_upper(index: usize) -> i64 {
        if index == 0 {
            0
        } else if index >= 63 {
            i64::MAX
        } else {
            (1i64 << index) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: i64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram into this one (bucket-wise sum; min/max
    /// widen, `sum` saturates). Used by the sliding-window view to
    /// combine its interval buckets into one summarisable histogram.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// rank-`ceil(q * count)` sample, clamped into `[min, max]` — hence
    /// exact whenever every sample in that bucket shares one value or
    /// the bucket is the min/max bucket.
    pub fn quantile(&self, q: f64) -> i64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Summarise into exact min/max/count/sum plus p50/p95/p99 estimates.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: if self.count == 0 { 0 } else { self.max },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Summary statistics exported for one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: i64,
    /// Exact minimum (0 when empty).
    pub min: i64,
    /// Exact maximum (0 when empty).
    pub max: i64,
    /// Median estimate (exact at bucket boundaries).
    pub p50: i64,
    /// 95th-percentile estimate.
    pub p95: i64,
    /// 99th-percentile estimate.
    pub p99: i64,
}

#[cfg(test)]
mod tests {
    use super::Histogram;

    #[test]
    fn empty_histogram_summarises_to_zeros() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max, s.sum), (0, 0, 0));
        assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0));
    }

    #[test]
    fn single_value_is_exact_at_every_quantile() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(8);
        }
        let s = h.summary();
        assert_eq!((s.min, s.max), (8, 8));
        assert_eq!((s.p50, s.p95, s.p99), (8, 8, 8));
        assert_eq!(s.sum, 80);
    }

    #[test]
    fn quantiles_are_exact_at_bucket_boundaries() {
        // 1 lands in bucket [1,1], 2 in bucket [2,3]: the p50 rank hits
        // the first bucket exactly, the p99 rank hits the second, whose
        // upper bound (3) clamps to the observed max (2).
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        assert_eq!(h.quantile(0.50), 1);
        assert_eq!(h.quantile(0.99), 2);

        // Power-of-two boundary: [4,7] bucket upper bound is 7 exactly.
        let mut h = Histogram::new();
        for v in [4, 5, 6, 7] {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.quantile(0.25), 7); // one shared bucket for all four
        assert_eq!(h.summary().min, 4);
    }

    #[test]
    fn bucket_upper_bounds_stay_within_factor_two() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 4] {
            h.record(v);
        }
        // rank(0.5 * 4) = 2 → bucket [2,3] → estimate 3 (true median 2.5).
        assert_eq!(h.quantile(0.5), 3);
        // rank 1 → bucket [1,1] → exact.
        assert_eq!(h.quantile(0.1), 1);
        // rank 4 → bucket [4,7] clamped to max.
        assert_eq!(h.quantile(1.0), 4);
    }

    #[test]
    fn non_positive_values_share_the_floor_bucket() {
        let mut h = Histogram::new();
        h.record(-5);
        h.record(0);
        let s = h.summary();
        assert_eq!((s.min, s.max), (-5, 0));
        // Floor-bucket estimates clamp into [min, max].
        assert!(s.p50 >= -5 && s.p50 <= 0);
    }

    #[test]
    fn sum_saturates_instead_of_overflowing() {
        let mut h = Histogram::new();
        h.record(i64::MAX);
        h.record(i64::MAX);
        assert_eq!(h.summary().sum, i64::MAX);
        assert_eq!(h.count(), 2);
    }
}
