//! Sliding-window histograms: a ring of interval buckets over
//! [`Histogram`], for live views that forget old load.
//!
//! The cumulative histograms in [`crate::metrics`] answer "how has this
//! process behaved since start"; they cannot answer "how is it behaving
//! *now*", because early samples dominate the percentile ranks forever.
//! A [`WindowedHistogram`] holds the last `N` rotation intervals: samples
//! land in the current interval, [`rotate`](WindowedHistogram::rotate)
//! (driven by an external clock, e.g. the serve binary's
//! `--metrics-interval-ms` thread) advances the ring and evicts the
//! oldest interval, and [`merged`](WindowedHistogram::merged) folds the
//! surviving intervals into one summarisable histogram covering roughly
//! `N x interval` of trailing wall-clock time.
//!
//! Rotation granularity is deliberately coarse: the window edge moves in
//! whole intervals, so the covered duration breathes between `(N-1)` and
//! `N` intervals. That is the standard Prometheus-style trade-off — it
//! keeps both record and rotate O(1) in the number of samples.

use crate::metrics::{Histogram, HistogramSummary};

/// Default number of interval buckets a window keeps (the serve binary
/// rotates one per `--metrics-interval-ms`, so the default window spans
/// eight intervals).
pub const DEFAULT_INTERVALS: usize = 8;

/// A ring of per-interval [`Histogram`]s forming one sliding window.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    intervals: Vec<Histogram>,
    current: usize,
    rotations: u64,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_INTERVALS)
    }
}

impl WindowedHistogram {
    /// A window of `intervals` buckets (clamped to at least 1).
    #[must_use]
    pub fn new(intervals: usize) -> Self {
        WindowedHistogram {
            intervals: vec![Histogram::new(); intervals.max(1)],
            current: 0,
            rotations: 0,
        }
    }

    /// Record one sample into the current interval.
    pub fn record(&mut self, value: i64) {
        self.intervals[self.current].record(value);
    }

    /// Advance the window one interval: the oldest interval is evicted
    /// (its slot becomes the new, empty current interval).
    pub fn rotate(&mut self) {
        self.current = (self.current + 1) % self.intervals.len();
        self.intervals[self.current] = Histogram::new();
        self.rotations += 1;
    }

    /// Number of interval buckets in the ring.
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.intervals.len()
    }

    /// How many times the window has rotated since construction.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Fold every surviving interval into one histogram covering the
    /// whole window.
    #[must_use]
    pub fn merged(&self) -> Histogram {
        let mut merged = Histogram::new();
        for interval in &self.intervals {
            merged.merge(interval);
        }
        merged
    }

    /// Summary statistics over the whole window (see
    /// [`Histogram::summary`]).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        self.merged().summary()
    }
}

#[cfg(test)]
mod tests {
    use super::WindowedHistogram;

    #[test]
    fn samples_survive_until_their_interval_is_evicted() {
        let mut w = WindowedHistogram::new(3);
        w.record(100);
        assert_eq!(w.summary().count, 1);
        // Two rotations: the sample's interval is still in the ring.
        w.rotate();
        w.rotate();
        assert_eq!(w.summary().count, 1);
        // Third rotation reclaims its slot.
        w.rotate();
        assert_eq!(w.summary().count, 0);
        assert_eq!(w.rotations(), 3);
    }

    #[test]
    fn merged_spans_multiple_intervals() {
        let mut w = WindowedHistogram::new(4);
        w.record(10);
        w.rotate();
        w.record(1000);
        let s = w.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn zero_interval_request_is_clamped_to_one() {
        let mut w = WindowedHistogram::new(0);
        assert_eq!(w.intervals(), 1);
        w.record(5);
        w.rotate(); // with one bucket, rotate clears everything
        assert_eq!(w.summary().count, 0);
    }
}
