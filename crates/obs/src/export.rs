//! Exporters: Chrome trace-event JSON and the flat metrics report.
//!
//! Both render through the in-tree [`disparity_model::json`] module and
//! are written with [`write_chrome_trace`] / [`write_metrics_report`],
//! which also round-trip-parse what they wrote so a corrupt file fails
//! loudly at the producer instead of inside `chrome://tracing`.

use std::io;
use std::path::Path;

use disparity_model::json::{self, Value};

use crate::metrics::MetricsSnapshot;
use crate::recorder::{AttrValue, SpanRecord};

/// Schema tag stamped into metrics reports (and `BENCH_*.json` files).
pub const METRICS_SCHEMA: &str = "disparity-obs/metrics-v1";

/// Schema tag stamped into Chrome trace files (in `otherData`).
pub const TRACE_SCHEMA: &str = "disparity-obs/trace-v1";

fn attr_value(attr: &AttrValue) -> Value {
    match attr {
        AttrValue::Int(n) => Value::Int(*n),
        AttrValue::Float(x) => Value::Float(*x),
        AttrValue::Text(s) => Value::Str(s.clone()),
    }
}

/// Render spans as a Chrome trace-event document (`chrome://tracing` /
/// Perfetto "JSON object format"): complete `"X"` events with
/// microsecond `ts`/`dur`, one `tid` per recording thread, and the exact
/// nanosecond timing plus user attributes under `args`.
#[must_use]
pub fn chrome_trace(spans: &[SpanRecord]) -> Value {
    let events: Vec<Value> = spans
        .iter()
        .map(|span| {
            let mut args = vec![
                ("start_ns".to_string(), Value::Int(span.start_ns)),
                ("dur_ns".to_string(), Value::Int(span.dur_ns)),
                ("depth".to_string(), Value::Int(i64::from(span.depth))),
            ];
            for (key, value) in &span.attrs {
                args.push(((*key).to_string(), attr_value(value)));
            }
            json::object(vec![
                ("name", Value::from(span.name)),
                ("cat", Value::from("span")),
                ("ph", Value::from("X")),
                ("ts", Value::Float(span.start_ns as f64 / 1_000.0)),
                ("dur", Value::Float(span.dur_ns as f64 / 1_000.0)),
                ("pid", Value::Int(0)),
                ("tid", Value::Int(i64::try_from(span.thread).unwrap_or(i64::MAX))),
                ("args", Value::Object(args)),
            ])
        })
        .collect();
    json::object(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
        (
            "otherData",
            json::object(vec![("schema", Value::from(TRACE_SCHEMA))]),
        ),
    ])
}

/// Render a metrics snapshot as the flat report: a `counters` object
/// (name → value) and a `histograms` object (name → count/sum/min/max/
/// p50/p95/p99), both sorted by name for diff-friendly output.
#[must_use]
pub fn metrics_report(snapshot: &MetricsSnapshot) -> Value {
    let counters: Vec<(String, Value)> = snapshot
        .counters
        .iter()
        .map(|(name, value)| {
            (
                name.clone(),
                Value::Int(i64::try_from(*value).unwrap_or(i64::MAX)),
            )
        })
        .collect();
    let histograms: Vec<(String, Value)> = snapshot
        .histograms
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                json::object(vec![
                    ("count", Value::Int(i64::try_from(h.count).unwrap_or(i64::MAX))),
                    ("sum", Value::Int(h.sum)),
                    ("min", Value::Int(h.min)),
                    ("max", Value::Int(h.max)),
                    ("p50", Value::Int(h.p50)),
                    ("p95", Value::Int(h.p95)),
                    ("p99", Value::Int(h.p99)),
                ]),
            )
        })
        .collect();
    json::object(vec![
        ("schema", Value::from(METRICS_SCHEMA)),
        ("counters", Value::Object(counters)),
        ("histograms", Value::Object(histograms)),
    ])
}

fn write_validated(path: &Path, value: &Value) -> io::Result<()> {
    let text = value.to_pretty();
    Value::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("obs export does not round-trip: {e}"),
        )
    })?;
    std::fs::write(path, text)
}

/// Drain all recorded spans and write them to `path` as a Chrome trace.
///
/// # Errors
///
/// Propagates filesystem errors; fails with [`io::ErrorKind::InvalidData`]
/// if the rendered JSON does not round-trip through the in-tree parser.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    let spans = crate::recorder::take_spans();
    write_validated(path, &chrome_trace(&spans))
}

/// Snapshot the metrics registry and write the report to `path`.
///
/// # Errors
///
/// Propagates filesystem errors; fails with [`io::ErrorKind::InvalidData`]
/// if the rendered JSON does not round-trip through the in-tree parser.
pub fn write_metrics_report(path: &Path) -> io::Result<()> {
    write_validated(path, &metrics_report(&crate::metrics::snapshot()))
}
