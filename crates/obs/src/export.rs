//! Exporters: Chrome trace-event JSON and the flat metrics report.
//!
//! Both render through the in-tree [`disparity_model::json`] module and
//! are written with [`write_chrome_trace`] / [`write_metrics_report`],
//! which also round-trip-parse what they wrote so a corrupt file fails
//! loudly at the producer instead of inside `chrome://tracing`.

use std::io;
use std::path::Path;

use disparity_model::json::{self, Value};

use crate::metrics::MetricsSnapshot;
use crate::recorder::{AttrValue, SpanRecord};

/// Schema tag stamped into metrics reports (and `BENCH_*.json` files).
pub const METRICS_SCHEMA: &str = "disparity-obs/metrics-v1";

/// Schema tag stamped into Chrome trace files (in `otherData`).
pub const TRACE_SCHEMA: &str = "disparity-obs/trace-v1";

fn attr_value(attr: &AttrValue) -> Value {
    match attr {
        AttrValue::Int(n) => Value::Int(*n),
        AttrValue::Float(x) => Value::Float(*x),
        AttrValue::Text(s) => Value::Str(s.clone()),
    }
}

/// Render spans as a Chrome trace-event document (`chrome://tracing` /
/// Perfetto "JSON object format"): complete `"X"` events with
/// microsecond `ts`/`dur`, one `tid` per recording thread, and the exact
/// nanosecond timing plus user attributes under `args`.
#[must_use]
pub fn chrome_trace(spans: &[SpanRecord]) -> Value {
    let events: Vec<Value> = spans
        .iter()
        .map(|span| {
            let mut args = vec![
                ("start_ns".to_string(), Value::Int(span.start_ns)),
                ("dur_ns".to_string(), Value::Int(span.dur_ns)),
                ("depth".to_string(), Value::Int(i64::from(span.depth))),
            ];
            if span.trace != 0 {
                args.push((
                    "trace_id".to_string(),
                    Value::Str(crate::recorder::format_trace_id(span.trace)),
                ));
            }
            for (key, value) in &span.attrs {
                args.push(((*key).to_string(), attr_value(value)));
            }
            json::object(vec![
                ("name", Value::from(span.name)),
                ("cat", Value::from("span")),
                ("ph", Value::from("X")),
                ("ts", Value::Float(span.start_ns as f64 / 1_000.0)),
                ("dur", Value::Float(span.dur_ns as f64 / 1_000.0)),
                ("pid", Value::Int(0)),
                ("tid", Value::Int(i64::try_from(span.thread).unwrap_or(i64::MAX))),
                ("args", Value::Object(args)),
            ])
        })
        .collect();
    json::object(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::from("ms")),
        (
            "otherData",
            json::object(vec![("schema", Value::from(TRACE_SCHEMA))]),
        ),
    ])
}

/// Render a metrics snapshot as the flat report: a `counters` object
/// (name → value) and a `histograms` object (name → count/sum/min/max/
/// p50/p95/p99), both sorted by name for diff-friendly output.
#[must_use]
pub fn metrics_report(snapshot: &MetricsSnapshot) -> Value {
    let counters: Vec<(String, Value)> = snapshot
        .counters
        .iter()
        .map(|(name, value)| {
            (
                name.clone(),
                Value::Int(i64::try_from(*value).unwrap_or(i64::MAX)),
            )
        })
        .collect();
    let histograms: Vec<(String, Value)> = snapshot
        .histograms
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                json::object(vec![
                    ("count", Value::Int(i64::try_from(h.count).unwrap_or(i64::MAX))),
                    ("sum", Value::Int(h.sum)),
                    ("min", Value::Int(h.min)),
                    ("max", Value::Int(h.max)),
                    ("p50", Value::Int(h.p50)),
                    ("p95", Value::Int(h.p95)),
                    ("p99", Value::Int(h.p99)),
                ]),
            )
        })
        .collect();
    json::object(vec![
        ("schema", Value::from(METRICS_SCHEMA)),
        ("counters", Value::Object(counters)),
        ("histograms", Value::Object(histograms)),
    ])
}

/// Builder for Prometheus-style text exposition (`text/plain` format:
/// `# TYPE` comment lines plus `name{label="value"} sample` lines).
///
/// Only the subset the disparity-service `metrics` op needs: counters,
/// gauges, and summary-style quantile samples, all with integer values.
/// Label values are escaped per the exposition format (backslash, quote,
/// newline). Output is deterministic in call order, which is what lets
/// the telemetry golden test pin it byte-for-byte.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

fn escape_label_value(value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            _ => escaped.push(c),
        }
    }
    escaped
}

impl PromText {
    /// An empty exposition document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a `# TYPE name kind` metadata line (`kind` is `counter`,
    /// `gauge`, or `summary`).
    pub fn type_line(&mut self, name: &str, kind: &str) {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emit one sample line: `name{labels} value`. Pass an empty label
    /// slice for unlabelled samples.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (key, val)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(key);
                self.out.push_str("=\"");
                self.out.push_str(&escape_label_value(val));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Finish the document and return the exposition text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

fn write_validated(path: &Path, value: &Value) -> io::Result<()> {
    let text = value.to_pretty();
    Value::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("obs export does not round-trip: {e}"),
        )
    })?;
    std::fs::write(path, text)
}

/// Drain all recorded spans and write them to `path` as a Chrome trace.
///
/// # Errors
///
/// Propagates filesystem errors; fails with [`io::ErrorKind::InvalidData`]
/// if the rendered JSON does not round-trip through the in-tree parser.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    let spans = crate::recorder::take_spans();
    write_validated(path, &chrome_trace(&spans))
}

/// Snapshot the metrics registry and write the report to `path`.
///
/// # Errors
///
/// Propagates filesystem errors; fails with [`io::ErrorKind::InvalidData`]
/// if the rendered JSON does not round-trip through the in-tree parser.
pub fn write_metrics_report(path: &Path) -> io::Result<()> {
    write_validated(path, &metrics_report(&crate::metrics::snapshot()))
}
