//! Always-on flight recorder: fixed-capacity ring journals of request
//! lifecycle events, dumped as NDJSON postmortems after a failure.
//!
//! Unlike spans and metrics (default-off, see [`crate::recorder`]), the
//! flight recorder is *always* recording: when a worker panics or a spec
//! is quarantined, the events leading up to the failure must already be
//! in the buffer — there is no second chance to capture them. That
//! forces a wait-free write path:
//!
//! - storage is a fixed set of per-journal rings of atomic slots,
//!   allocated once on first use and never grown or freed afterwards;
//! - [`record`] claims a slot with one relaxed `fetch_add` and fills it
//!   with relaxed stores plus a release publish — no `Mutex`/`RwLock`,
//!   no heap allocation, enforced by the srclint `hot-path` rule on the
//!   marked region below;
//! - readers ([`snapshot`]) are best-effort: a slot overwritten mid-read
//!   is detected via its publication tag and skipped. Losing an event to
//!   a torn read is acceptable for a debugging aid; blocking a worker's
//!   request path is not.
//!
//! Threads are distributed across [`JOURNALS`] rings by their dense
//! recorder track id, so each service worker effectively owns a journal
//! and a chatty connection thread cannot evict a quiet worker's history.
//! Each event carries the thread's request trace context (see
//! [`crate::recorder::trace_scope`]), which is what ties a postmortem
//! line back to the `trace_id` echoed in service responses.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

// Sync primitives come from the conc shim: plain std re-exports in
// normal builds, model-checked instrumented versions under `--features
// model` (see `tests/conc_flight.rs` for the harness + mutant probes).
use disparity_conc::sync::atomic::{fence, AtomicU64, Ordering};

use disparity_model::json::{self, Value};

use crate::recorder;

/// Schema tag stamped into the header line of every postmortem dump.
pub const POSTMORTEM_SCHEMA: &str = "disparity-obs/postmortem-v1";

/// Number of independent ring journals (threads hash across them).
pub const JOURNALS: usize = 8;

/// Slots per journal. Power of two so the ring index is a mask.
pub const JOURNAL_CAPACITY: usize = 1024;

/// A request lifecycle event kind. The numeric codes are stable wire
/// values (they appear in postmortem dumps only via [`as_str`], but the
/// codes order the glossary in EXPERIMENTS.md).
///
/// [`as_str`]: EventKind::as_str
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A request line was parsed and is about to be submitted.
    Accept = 1,
    /// The request was admitted to the worker queue.
    Admit = 2,
    /// The request was refused because the queue was full.
    Overload = 3,
    /// The request was refused because the service is draining.
    ShuttingDown = 4,
    /// The request line failed to parse (the arg is its byte length).
    ParseError = 5,
    /// A worker dequeued the request (the arg is queue-wait nanos).
    Dequeue = 6,
    /// Analysis graph served from the content-addressed cache.
    CacheHit = 7,
    /// Analysis graph built from scratch (cache miss).
    CacheMiss = 8,
    /// The request exceeded its soft deadline (the arg is the budget ms).
    Deadline = 9,
    /// The request completed and a response was handed to the writer.
    Completed = 10,
    /// The request completed with an `error` status.
    Error = 11,
    /// A worker panic was caught while processing (the arg is the spec hash).
    Panic = 12,
    /// A spec crossed the strike threshold and was quarantined (arg = hash).
    Quarantine = 13,
    /// A worker thread died and the supervisor respawned it.
    WorkerDeath = 14,
    /// A postmortem dump was requested via the `dump` op.
    Dump = 15,
}

impl EventKind {
    /// Wire name used in postmortem NDJSON lines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Accept => "accept",
            EventKind::Admit => "admit",
            EventKind::Overload => "overload",
            EventKind::ShuttingDown => "shutting_down",
            EventKind::ParseError => "parse_error",
            EventKind::Dequeue => "dequeue",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::Deadline => "deadline",
            EventKind::Completed => "completed",
            EventKind::Error => "error",
            EventKind::Panic => "panic",
            EventKind::Quarantine => "quarantine",
            EventKind::WorkerDeath => "worker_death",
            EventKind::Dump => "dump",
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            1 => EventKind::Accept,
            2 => EventKind::Admit,
            3 => EventKind::Overload,
            4 => EventKind::ShuttingDown,
            5 => EventKind::ParseError,
            6 => EventKind::Dequeue,
            7 => EventKind::CacheHit,
            8 => EventKind::CacheMiss,
            9 => EventKind::Deadline,
            10 => EventKind::Completed,
            11 => EventKind::Error,
            12 => EventKind::Panic,
            13 => EventKind::Quarantine,
            14 => EventKind::WorkerDeath,
            15 => EventKind::Dump,
            _ => return None,
        })
    }
}

/// One slot of a journal ring. `tag` is the publication word: 0 means
/// empty or mid-write; a published slot holds its claim ticket + 1, so a
/// reader can detect overwrites by re-checking the tag after reading.
struct Slot {
    tag: AtomicU64,
    ts_ns: AtomicU64,
    trace: AtomicU64,
    thread: AtomicU64,
    kind: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    // Not `const`: the shim's AtomicU64 registers with the scheduler in
    // model executions, so slots are built at runtime (`flight()` inits
    // the global set once).
    fn empty() -> Self {
        Slot {
            tag: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            thread: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

struct Journal {
    /// Next claim ticket; monotonically increasing, never reset.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

/// A set of ring journals. The process-wide instance behind [`record`] /
/// [`snapshot`] uses [`JOURNALS`] × [`JOURNAL_CAPACITY`]; model harnesses
/// build tiny instances (e.g. 1 journal × 1 slot) so slot aliasing —
/// tickets `N` and `N + capacity` hitting the same slot — is exhaustively
/// explorable.
pub struct FlightRecorder {
    journals: Vec<Journal>,
    /// Ring-index mask (`capacity - 1`; capacity is a power of two).
    mask: u64,
}

impl core::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("journals", &self.journals.len())
            .field("capacity", &(self.mask + 1))
            .finish()
    }
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// Monotonic dump counter: makes postmortem filenames unique within a
/// process even when several failures share a reason and trace id.
/// Stays on the std atomic — it is pure bookkeeping outside the checked
/// protocol, and statics need a `const` constructor.
static DUMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn flight() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| FlightRecorder::new(JOURNALS, JOURNAL_CAPACITY))
}

/// Pre-allocate the journals and pin the timestamp epoch. Optional —
/// the first [`record`] does the same — but calling it at process start
/// keeps the "no allocation after startup" guarantee literal.
pub fn init() {
    let _ = flight();
    let _ = recorder::epoch();
}

impl FlightRecorder {
    /// Builds a recorder with `journals` rings of `capacity` slots each
    /// (`capacity` is rounded up to a power of two, minimum 1).
    #[must_use]
    pub fn new(journals: usize, capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(1);
        FlightRecorder {
            journals: (0..journals.max(1))
                .map(|_| Journal {
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| Slot::empty()).collect(),
                })
                .collect(),
            mask: (capacity - 1) as u64,
        }
    }

    /// The seqlock-style write protocol with all fields supplied by the
    /// caller. Wait-free: one ticket `fetch_add` plus six atomic stores
    /// and a fence; never locks, never allocates.
    pub fn record_raw(&self, thread: u64, trace: u64, ts_ns: u64, kind: EventKind, arg: u64) {
        // srclint: hot-path-begin — wait-free record path: no locks, no heap.
        let journal = &self.journals[(thread as usize) % self.journals.len()];
        let ticket = journal.head.fetch_add(1, Ordering::Relaxed);
        let slot = &journal.slots[(ticket & self.mask) as usize];
        slot.tag.store(0, Ordering::Release);
        // conc: release fence so the relaxed payload stores below carry the
        // tag=0 un-publish with them. Without it a reader that observed
        // this writer's payload could still re-read the *previous*
        // ticket's tag on its recheck (read-read coherence permits the
        // stale value) and accept a torn record; found by the conc model
        // checker — see obs/tests/conc_flight.rs and the committed trace
        // in obs/tests/conc_corpus/.
        fence(Ordering::Release);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.thread.store(thread, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.tag.store(ticket + 1, Ordering::Release);
        // srclint: hot-path-end
    }

    /// Read every published event, oldest first (by timestamp, then
    /// thread). Best-effort: slots overwritten while being read are
    /// detected via the tag recheck and skipped.
    #[must_use]
    pub fn snapshot(&self) -> Vec<EventRecord> {
        let mut events = Vec::new();
        for journal in &self.journals {
            for slot in journal.slots.iter() {
                let tag = slot.tag.load(Ordering::Acquire);
                if tag == 0 {
                    continue;
                }
                let record = EventRecord {
                    ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                    thread: slot.thread.load(Ordering::Relaxed),
                    trace: slot.trace.load(Ordering::Relaxed),
                    kind: match EventKind::from_code(slot.kind.load(Ordering::Relaxed)) {
                        Some(kind) => kind,
                        None => continue,
                    },
                    arg: slot.arg.load(Ordering::Relaxed),
                };
                // Order the tag re-check after the field reads; a writer
                // that reclaimed the slot meanwhile zeroed or bumped the
                // tag, and its release fence forces that un-publish to be
                // visible here if any of its payload stores were.
                fence(Ordering::Acquire);
                if slot.tag.load(Ordering::Relaxed) != tag {
                    continue;
                }
                events.push(record);
            }
        }
        events.sort_by_key(|e| (e.ts_ns, e.thread));
        events
    }
}

/// Record one lifecycle event on the calling thread's journal, tagged
/// with the thread's current trace context. Wait-free: one ticket
/// `fetch_add` plus six atomic stores; never locks, never allocates.
pub fn record(kind: EventKind, arg: u64) {
    let flight = flight();
    let now = Instant::now();
    let ts_ns = u64::try_from(now.saturating_duration_since(recorder::epoch()).as_nanos())
        .unwrap_or(u64::MAX);
    let thread = recorder::thread_track();
    let trace = recorder::current_trace();
    flight.record_raw(thread, trace, ts_ns, kind, arg);
}

/// A decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Nanoseconds since the obs epoch.
    pub ts_ns: u64,
    /// Dense track id of the thread that recorded the event.
    pub thread: u64,
    /// Request trace id active at record time (0 = no request context).
    pub trace: u64,
    /// What happened.
    pub kind: EventKind,
    /// Event-specific argument (see [`EventKind`] docs).
    pub arg: u64,
}

/// Read every published event currently in the journals, oldest first
/// (by timestamp, then thread). Best-effort: slots overwritten while
/// being read are skipped, and recording continues concurrently.
#[must_use]
pub fn snapshot() -> Vec<EventRecord> {
    flight().snapshot()
}

/// Deliberately weakened copies of the record/snapshot protocols —
/// mutation probes proving the model checker actually catches the bugs
/// the real code guards against. Compiled only for model builds and only
/// ever called by `tests/conc_flight.rs`; each probe must be caught
/// within the tier-1 schedule budget.
#[cfg(feature = "model")]
pub mod probes {
    use super::*;

    /// The pre-fix write path: no release fence between the tag=0
    /// un-publish and the relaxed payload stores. This is the genuine
    /// ordering bug the checker found in the shipped `record` path.
    pub fn record_raw_missing_release_fence(
        fr: &FlightRecorder,
        thread: u64,
        trace: u64,
        ts_ns: u64,
        kind: EventKind,
        arg: u64,
    ) {
        let journal = &fr.journals[(thread as usize) % fr.journals.len()];
        let ticket = journal.head.fetch_add(1, Ordering::Relaxed);
        let slot = &journal.slots[(ticket & fr.mask) as usize];
        slot.tag.store(0, Ordering::Release);
        // conc: mutant under test — release fence deliberately omitted.
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.thread.store(thread, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.tag.store(ticket + 1, Ordering::Release);
    }

    /// Publishes the new tag *before* writing the payload: a reader can
    /// observe the fresh tag with the previous ticket's fields.
    pub fn record_raw_publish_before_payload(
        fr: &FlightRecorder,
        thread: u64,
        trace: u64,
        ts_ns: u64,
        kind: EventKind,
        arg: u64,
    ) {
        let journal = &fr.journals[(thread as usize) % fr.journals.len()];
        let ticket = journal.head.fetch_add(1, Ordering::Relaxed);
        let slot = &journal.slots[(ticket & fr.mask) as usize];
        // conc: mutant under test — tag published before the payload.
        slot.tag.store(ticket + 1, Ordering::Release);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.thread.store(thread, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
    }

    /// Snapshot without the fence + tag recheck: accepts torn records
    /// whenever a writer reclaims the slot mid-read.
    #[must_use]
    pub fn snapshot_missing_recheck(fr: &FlightRecorder) -> Vec<EventRecord> {
        let mut events = Vec::new();
        for journal in &fr.journals {
            for slot in journal.slots.iter() {
                let tag = slot.tag.load(Ordering::Acquire);
                if tag == 0 {
                    continue;
                }
                // conc: mutant under test — fence + recheck deliberately
                // omitted.
                let record = EventRecord {
                    ts_ns: slot.ts_ns.load(Ordering::Relaxed),
                    thread: slot.thread.load(Ordering::Relaxed),
                    trace: slot.trace.load(Ordering::Relaxed),
                    kind: match EventKind::from_code(slot.kind.load(Ordering::Relaxed)) {
                        Some(kind) => kind,
                        None => continue,
                    },
                    arg: slot.arg.load(Ordering::Relaxed),
                };
                events.push(record);
            }
        }
        events.sort_by_key(|e| (e.ts_ns, e.thread));
        events
    }
}

/// Render one event as its postmortem NDJSON object.
fn event_json(event: &EventRecord) -> Value {
    json::object(vec![
        ("ts_ns", Value::Int(i64::try_from(event.ts_ns).unwrap_or(i64::MAX))),
        ("thread", Value::Int(i64::try_from(event.thread).unwrap_or(i64::MAX))),
        (
            "trace_id",
            Value::from(recorder::format_trace_id(event.trace)),
        ),
        ("event", Value::from(event.kind.as_str())),
        ("arg", Value::Int(i64::try_from(event.arg).unwrap_or(i64::MAX))),
    ])
}

/// Render a postmortem document from an explicit event list: one header
/// object (schema, reason, triggering trace id, event count) followed by
/// one object per event, newline-delimited. Deterministic given its
/// inputs — pinned byte-for-byte by the telemetry golden test.
#[must_use]
pub fn render_postmortem(reason: &str, trace: u64, events: &[EventRecord]) -> String {
    let header = json::object(vec![
        ("schema", Value::from(POSTMORTEM_SCHEMA)),
        ("reason", Value::from(reason)),
        ("trace_id", Value::from(recorder::format_trace_id(trace))),
        (
            "events",
            Value::Int(i64::try_from(events.len()).unwrap_or(i64::MAX)),
        ),
    ]);
    let mut out = header.to_string();
    out.push('\n');
    for event in events {
        out.push_str(&event_json(event).to_string());
        out.push('\n');
    }
    out
}

/// Snapshot the journals and render a postmortem document. `reason` is
/// a short machine token (`panic`, `quarantine`, `dump`); `trace` is the
/// trace id of the triggering request (0 for process-level dumps).
#[must_use]
pub fn postmortem(reason: &str, trace: u64) -> String {
    render_postmortem(reason, trace, &snapshot())
}

/// Write a postmortem dump into `dir` (created if missing) and return
/// its path. Filenames are `postmortem-<seq>-<reason>-<trace_id>.ndjson`
/// with a process-wide sequence number, so repeated failures never
/// clobber each other.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_postmortem(dir: &Path, reason: &str, trace: u64) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = format!(
        "postmortem-{seq:04}-{reason}-{}.ndjson",
        recorder::format_trace_id(trace)
    );
    let path = dir.join(name);
    std::fs::write(&path, postmortem(reason, trace))?;
    Ok(path)
}
