//! Global span recorder: default-off, thread-safe, RAII-based.
//!
//! The recorder is a process-wide singleton. [`enable`] switches it on;
//! while off, [`span`] returns an inert guard and the only cost paid by
//! instrumented code is one relaxed atomic load. Closed spans accumulate
//! in a global buffer until drained with [`take_spans`].
//!
//! Nesting is tracked per thread: guards created on the same thread form
//! a stack (enforced by RAII scoping), and each record carries the stack
//! depth at creation so exported traces are well-nested by construction.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics;

/// Master switch. Relaxed loads are enough: a span that narrowly misses
/// an `enable()` is simply not recorded, which is acceptable.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Wall-clock origin for span timestamps; fixed at first `enable()` so
/// timestamps are comparable across threads for the process lifetime.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Closed spans awaiting export.
static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Source of dense per-thread track ids for trace export.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Turn recording on. Idempotent; fixes the timestamp epoch on first call.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Spans already open keep recording until dropped.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether the recorder is currently on. This is the ~one-atomic-load
/// gate instrumented hot paths may use to skip attribute computation.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drain and return every span closed since the last drain.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(
        &mut *SPANS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// Discard all recorded spans and metrics (recording stays on/off as-is).
pub fn reset() {
    take_spans();
    metrics::clear();
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer attribute (counts, nanoseconds, indices).
    Int(i64),
    /// Floating-point attribute (ratios, utilizations).
    Float(f64),
    /// Free-form text attribute.
    Text(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(i64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}
impl From<disparity_model::time::Duration> for AttrValue {
    fn from(v: disparity_model::time::Duration) -> Self {
        AttrValue::Int(v.as_nanos())
    }
}

/// A closed span, ready for export.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (static so instrumentation never allocates for names).
    pub name: &'static str,
    /// Start offset in nanoseconds since the recording epoch.
    pub start_ns: i64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: i64,
    /// Dense per-thread track id (maps to `tid` in Chrome traces).
    pub thread: u64,
    /// Nesting depth on that thread when the span opened (0 = root).
    pub depth: u32,
    /// Key-value attributes attached while the span was open.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    start_ns: i64,
    thread: u64,
    depth: u32,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard returned by [`span`]. Records a [`SpanRecord`] on drop if
/// the recorder was enabled when the guard was created.
#[must_use = "a span guard records its duration when dropped; binding it to `_` closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl std::fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpan")
            .field("name", &self.name)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

/// Open a span. Inert (and nearly free) when recording is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    let start = Instant::now();
    let start_ns = i64::try_from(start.saturating_duration_since(epoch()).as_nanos())
        .unwrap_or(i64::MAX);
    let thread = THREAD_ID.with(|t| *t);
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            start,
            start_ns,
            thread,
            depth,
            attrs: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Whether this guard will record on drop. Use to skip computing
    /// expensive attribute values when recording is off.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attach a key-value attribute. No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns =
            i64::try_from(active.start.elapsed().as_nanos()).unwrap_or(i64::MAX);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        metrics::observe_span_duration(active.name, dur_ns);
        let record = SpanRecord {
            name: active.name,
            start_ns: active.start_ns,
            dur_ns,
            thread: active.thread,
            depth: active.depth,
            attrs: active.attrs,
        };
        SPANS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }
}

/// Open a span with attributes in one expression.
///
/// Attribute value expressions are only evaluated when recording is
/// enabled, so `span!("x", detail = expensive())` stays free when off.
///
/// ```
/// let _guard = disparity_obs::span!("phase");
/// let n = 3usize;
/// let _guard2 = disparity_obs::span!("phase.step", items = n, label = "warm");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span($name);
        if guard.is_recording() {
            $(guard.attr(stringify!($key), $value);)+
        }
        guard
    }};
}
