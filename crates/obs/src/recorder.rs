//! Global span recorder: default-off, thread-safe, RAII-based.
//!
//! The recorder is a process-wide singleton. [`enable`] switches it on;
//! while off, [`span`] returns an inert guard and the only cost paid by
//! instrumented code is one relaxed atomic load. Closed spans accumulate
//! in a global buffer until drained with [`take_spans`].
//!
//! Nesting is tracked per thread: guards created on the same thread form
//! a stack (enforced by RAII scoping), and each record carries the stack
//! depth at creation so exported traces are well-nested by construction.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics;

/// Master switch. Relaxed loads are enough: a span that narrowly misses
/// an `enable()` is simply not recorded, which is acceptable.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Wall-clock origin for span timestamps; fixed at first `enable()` so
/// timestamps are comparable across threads for the process lifetime.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Closed spans awaiting export.
static SPANS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Source of dense per-thread track ids for trace export.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // conc: unique-id allocation needs atomicity, not ordering
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Dense track id of the calling thread (also used by the flight
/// recorder to attribute events to worker journals).
pub(crate) fn thread_track() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Turn recording on. Idempotent; fixes the timestamp epoch on first call.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::SeqCst); // conc: rare toggle; strongest order by default
}

/// Turn recording off. Spans already open keep recording until dropped.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst); // conc: rare toggle; strongest order by default
}

/// Whether the recorder is currently on. This is the ~one-atomic-load
/// gate instrumented hot paths may use to skip attribute computation.
#[inline]
pub fn is_enabled() -> bool {
    // conc: advisory gate; a stale read only delays the toggle by one event
    ENABLED.load(Ordering::Relaxed)
}

/// Drain and return every span closed since the last drain.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(
        &mut *SPANS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// Discard all recorded spans and metrics (recording stays on/off as-is).
pub fn reset() {
    take_spans();
    metrics::clear();
}

/// Render a trace id in the canonical wire format: two dash-separated
/// 32-bit lowercase-hex halves (`HHHHHHHH-HHHHHHHH`). The split mirrors
/// how disparity-service derives ids (connection id, request sequence),
/// but the recorder treats the value as an opaque 64-bit token.
#[must_use]
pub fn format_trace_id(trace: u64) -> String {
    format!("{:08x}-{:08x}", trace >> 32, trace & 0xffff_ffff)
}

/// The trace id installed on this thread by the innermost live
/// [`TraceScope`], or 0 when no request context is active.
#[must_use]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard installing a request trace id as this thread's span
/// context. Every span opened on the thread while the guard is live is
/// stamped with the id, so a whole request's span tree can be pulled out
/// of the exported trace by `trace_id`. Restores the previous context on
/// drop, so scopes nest correctly (e.g. tests driving a service inline).
#[must_use = "the trace context is uninstalled when the scope guard drops"]
#[derive(Debug)]
pub struct TraceScope {
    previous: u64,
}

/// Install `trace` as the current thread's span trace context.
///
/// Unlike [`span`], this is *not* gated on [`is_enabled`]: the cost is a
/// thread-local store, and the flight recorder (always-on) also reads
/// the context, so it must be installed even when span recording is off.
pub fn trace_scope(trace: u64) -> TraceScope {
    let previous = CURRENT_TRACE.with(|t| t.replace(trace));
    TraceScope { previous }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|t| t.set(self.previous));
    }
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Signed integer attribute (counts, nanoseconds, indices).
    Int(i64),
    /// Floating-point attribute (ratios, utilizations).
    Float(f64),
    /// Free-form text attribute.
    Text(String),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(i64::from(v))
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_owned())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}
impl From<disparity_model::time::Duration> for AttrValue {
    fn from(v: disparity_model::time::Duration) -> Self {
        AttrValue::Int(v.as_nanos())
    }
}

/// A closed span, ready for export.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (static so instrumentation never allocates for names).
    pub name: &'static str,
    /// Start offset in nanoseconds since the recording epoch.
    pub start_ns: i64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: i64,
    /// Dense per-thread track id (maps to `tid` in Chrome traces).
    pub thread: u64,
    /// Nesting depth on that thread when the span opened (0 = root).
    pub depth: u32,
    /// Request trace id active when the span opened (0 = none). See
    /// [`trace_scope`] and [`format_trace_id`].
    pub trace: u64,
    /// Key-value attributes attached while the span was open.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    start_ns: i64,
    thread: u64,
    depth: u32,
    trace: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// RAII guard returned by [`span`]. Records a [`SpanRecord`] on drop if
/// the recorder was enabled when the guard was created.
#[must_use = "a span guard records its duration when dropped; binding it to `_` closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl std::fmt::Debug for ActiveSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSpan")
            .field("name", &self.name)
            .field("depth", &self.depth)
            .finish_non_exhaustive()
    }
}

/// Open a span. Inert (and nearly free) when recording is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { active: None };
    }
    let start = Instant::now();
    let start_ns = i64::try_from(start.saturating_duration_since(epoch()).as_nanos())
        .unwrap_or(i64::MAX);
    let thread = THREAD_ID.with(|t| *t);
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            start,
            start_ns,
            thread,
            depth,
            trace: current_trace(),
            attrs: Vec::new(),
        }),
    }
}

/// Base of the virtual track range used by [`record_span`]. Real thread
/// tracks are small dense integers; virtual tracks have this bit set, so
/// the two ranges can never collide (and the value still fits in the
/// `i64` tid of a Chrome trace event).
pub const VIRTUAL_TRACK_BASE: u64 = 1 << 62;

/// Record an already-measured interval as a closed span, without the
/// RAII guard. Used for phases whose start was captured on a different
/// thread than the one that observes their end — e.g. queue wait, where
/// the enqueue timestamp is taken by the acceptor and the dequeue by a
/// worker.
///
/// Such an interval is not any single thread's work, and concurrent
/// requests' waits genuinely overlap in wall time, so placing the record
/// on the calling thread's track would break the per-track
/// disjoint-or-nested invariant. Instead, when a [`trace_scope`] context
/// is active the record lands on a *virtual track* derived from the
/// trace id ([`VIRTUAL_TRACK_BASE`]`| trace`), one track per request,
/// at depth 0 — mirroring Chrome tracing's async events. With no trace
/// context it falls back to the calling thread's track and depth.
/// Callers must pass `start <= end` (the duration saturates to zero
/// otherwise).
pub fn record_span(name: &'static str, start: Instant, end: Instant) {
    if !is_enabled() {
        return;
    }
    let start_ns = i64::try_from(start.saturating_duration_since(epoch()).as_nanos())
        .unwrap_or(i64::MAX);
    let dur_ns =
        i64::try_from(end.saturating_duration_since(start).as_nanos()).unwrap_or(i64::MAX);
    metrics::observe_span_duration(name, dur_ns);
    let trace = current_trace();
    let (thread, depth) = if trace == 0 {
        (THREAD_ID.with(|t| *t), DEPTH.with(Cell::get))
    } else {
        (VIRTUAL_TRACK_BASE | (trace & (VIRTUAL_TRACK_BASE - 1)), 0)
    };
    let record = SpanRecord {
        name,
        start_ns,
        dur_ns,
        thread,
        depth,
        trace,
        attrs: Vec::new(),
    };
    SPANS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(record);
}

impl SpanGuard {
    /// Whether this guard will record on drop. Use to skip computing
    /// expensive attribute values when recording is off.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attach a key-value attribute. No-op on an inert guard.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let dur_ns =
            i64::try_from(active.start.elapsed().as_nanos()).unwrap_or(i64::MAX);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        metrics::observe_span_duration(active.name, dur_ns);
        let record = SpanRecord {
            name: active.name,
            start_ns: active.start_ns,
            dur_ns,
            thread: active.thread,
            depth: active.depth,
            trace: active.trace,
            attrs: active.attrs,
        };
        SPANS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }
}

/// Open a span with attributes in one expression.
///
/// Attribute value expressions are only evaluated when recording is
/// enabled, so `span!("x", detail = expensive())` stays free when off.
///
/// ```
/// let _guard = disparity_obs::span!("phase");
/// let n = 3usize;
/// let _guard2 = disparity_obs::span!("phase.step", items = n, label = "warm");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span($name);
        if guard.is_recording() {
            $(guard.attr(stringify!($key), $value);)+
        }
        guard
    }};
}
