//! In-tree observability layer for the time-disparity workspace.
//!
//! Provides three building blocks, all behind one global, thread-safe,
//! **default-off** recorder so instrumented hot paths cost roughly a
//! single relaxed atomic load when recording is disabled:
//!
//! 1. **Spans** ([`span()`] / [`span!`]) — RAII guards with nanosecond
//!    wall-clock timing, per-thread nesting, and key-value attributes.
//!    Every closed span also feeds a duration histogram named
//!    `span.<name>`, so phase timings get p50/p95/p99 summaries for free.
//! 2. **Metrics** ([`counter_add`], [`observe`]) — monotonic counters and
//!    log-scale (power-of-two bucket) histograms.
//! 3. **Exporters** ([`export`]) — a Chrome `chrome://tracing`
//!    trace-event file and a flat metrics report, both rendered through
//!    the in-tree [`disparity_model::json`] module. No external crates.
//!
//! Two live-telemetry companions sit beside the default-off recorder:
//! the **flight recorder** ([`flight`]) — always-on, wait-free ring
//! journals of request lifecycle events, dumped as NDJSON postmortems —
//! and **sliding-window histograms** ([`window`]) for "now" views that
//! the cumulative-since-start metrics cannot provide. Request
//! correlation across all three comes from [`trace_scope`], a
//! thread-local trace id stamped onto every span and flight event.
//!
//! # Usage
//!
//! ```
//! disparity_obs::enable();
//! {
//!     let mut guard = disparity_obs::span("analysis.phase");
//!     guard.attr("tasks", 42_i64);
//!     disparity_obs::counter_add("analysis.pairs", 1);
//!     disparity_obs::observe("analysis.window_span", 7);
//! } // span closes here and records its duration
//! let spans = disparity_obs::take_spans();
//! assert_eq!(spans.len(), 1);
//! let report = disparity_obs::export::metrics_report(&disparity_obs::snapshot());
//! assert!(report.to_pretty().contains("analysis.pairs"));
//! disparity_obs::reset();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod flight;
pub mod metrics;
pub mod recorder;
pub mod window;

pub use metrics::{
    counter_add, observe, observe_duration, snapshot, Histogram, HistogramSummary,
    MetricsSnapshot,
};
pub use recorder::{
    current_trace, disable, enable, format_trace_id, is_enabled, record_span, reset, span,
    take_spans, trace_scope, AttrValue, SpanGuard, SpanRecord, TraceScope, VIRTUAL_TRACK_BASE,
};
pub use window::WindowedHistogram;
