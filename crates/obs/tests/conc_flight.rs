//! Model-checked verification of the flight recorder's seqlock-style
//! record/snapshot protocol (`--features model`).
//!
//! The harness runs a tiny recorder — one journal, ONE slot — so tickets
//! 0 and 1 alias the same slot and every writer/reader interleaving,
//! including the slot-reclaim races, is exhaustively explorable. The
//! writer stamps each ticket with a sentinel value in every payload field
//! (`ts_ns == trace == arg`, `kind` paired to the value), so a torn
//! record — fields mixed from two tickets — is detectable by pure field
//! equality.
//!
//! Three mutation probes (see `disparity_obs::flight::probes`) prove the
//! checker has teeth; each caught schedule is committed to
//! `tests/conc_corpus/` and replayed byte-for-byte.

#![cfg(feature = "model")]

use std::path::PathBuf;
use std::sync::Arc;

use disparity_conc::model::{self, corpus, Config};
use disparity_conc::sync::thread;
use disparity_obs::flight::{probes, EventKind, EventRecord, FlightRecorder};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/conc_corpus")
}

/// Committed config: read window 2 keeps the store-history branching
/// small enough for exhaustive exploration while still admitting the
/// stale-tag re-read the missing-fence bug needs (the victim tag value
/// is always within the two most recent stores in this scenario).
fn cfg() -> Config {
    Config {
        read_window: 2,
        ..Config::default()
    }
}

/// Writer side of every scenario: records tickets 0 and 1 into the
/// single aliased slot, all payload fields equal to the sentinel
/// (ticket + 1) and `kind` paired to it.
fn record_two(fr: &FlightRecorder) {
    fr.record_raw(0, 1, 1, EventKind::Accept, 1);
    fr.record_raw(0, 2, 2, EventKind::Admit, 2);
}

/// A snapshot is allowed to miss events (best-effort reader) but must
/// never contain a record mixing fields from two tickets.
fn assert_not_torn(events: &[EventRecord]) {
    for e in events {
        assert_eq!(e.thread, 0, "thread field torn: {e:?}");
        let v = e.ts_ns;
        assert!(v == 1 || v == 2, "ts_ns out of range (torn): {e:?}");
        assert!(e.trace == v && e.arg == v, "torn record: {e:?}");
        let want = if v == 1 {
            EventKind::Accept
        } else {
            EventKind::Admit
        };
        assert_eq!(e.kind, want, "torn record (kind): {e:?}");
    }
}

#[test]
fn snapshot_never_torn_with_slot_aliasing() {
    let out = model::check(cfg(), || {
        let fr = Arc::new(FlightRecorder::new(1, 1));
        let writer = {
            let fr = Arc::clone(&fr);
            thread::spawn(move || record_two(&fr))
        };
        assert_not_torn(&fr.snapshot());
        writer.join().unwrap();
        // Quiescent read: both tickets landed, the survivor is ticket 1.
        let final_snap = fr.snapshot();
        assert_not_torn(&final_snap);
        assert_eq!(final_snap.len(), 1, "one slot holds one record");
        assert_eq!(final_snap[0].ts_ns, 2, "last publish wins the slot");
    });
    out.assert_ok();
    assert!(
        out.complete,
        "exhaustive exploration must finish at the committed config \
         (ran {} schedules)",
        out.schedules
    );
}

#[test]
fn random_schedules_stay_clean_beyond_the_exhaustive_budget() {
    // Seeded random exploration at a higher preemption bound than the
    // exhaustive pass can afford: schedules the DFS budget excludes.
    let out = model::check(
        Config {
            mode: model::Mode::Random {
                seed: 0xD15B_0A11,
                schedules: 400,
            },
            preemption_bound: 4,
            read_window: 2,
            ..Config::default()
        },
        || {
            let fr = Arc::new(FlightRecorder::new(1, 1));
            let writer = {
                let fr = Arc::clone(&fr);
                thread::spawn(move || record_two(&fr))
            };
            assert_not_torn(&fr.snapshot());
            writer.join().unwrap();
        },
    );
    out.assert_ok();
    assert_eq!(out.schedules, 400);
}

#[test]
fn mutant_missing_release_fence_is_caught() {
    let v = corpus::verify(
        &corpus_dir(),
        "flight_missing_release_fence.json",
        cfg(),
        || {
            let fr = Arc::new(FlightRecorder::new(1, 1));
            let writer = {
                let fr = Arc::clone(&fr);
                thread::spawn(move || {
                    probes::record_raw_missing_release_fence(&fr, 0, 1, 1, EventKind::Accept, 1);
                    probes::record_raw_missing_release_fence(&fr, 0, 2, 2, EventKind::Admit, 2);
                })
            };
            assert_not_torn(&fr.snapshot());
            writer.join().unwrap();
        },
    );
    assert!(
        v.message.contains("torn"),
        "expected a torn-record assertion, got: {}",
        v.message
    );
}

#[test]
fn mutant_publish_before_payload_is_caught() {
    let v = corpus::verify(
        &corpus_dir(),
        "flight_publish_before_payload.json",
        cfg(),
        || {
            let fr = Arc::new(FlightRecorder::new(1, 1));
            let writer = {
                let fr = Arc::clone(&fr);
                thread::spawn(move || {
                    probes::record_raw_publish_before_payload(&fr, 0, 1, 1, EventKind::Accept, 1);
                    probes::record_raw_publish_before_payload(&fr, 0, 2, 2, EventKind::Admit, 2);
                })
            };
            assert_not_torn(&fr.snapshot());
            writer.join().unwrap();
        },
    );
    assert!(
        v.message.contains("torn"),
        "expected a torn-record assertion, got: {}",
        v.message
    );
}

#[test]
fn mutant_snapshot_missing_recheck_is_caught() {
    let v = corpus::verify(
        &corpus_dir(),
        "flight_snapshot_missing_recheck.json",
        cfg(),
        || {
            let fr = Arc::new(FlightRecorder::new(1, 1));
            let writer = {
                let fr = Arc::clone(&fr);
                thread::spawn(move || record_two(&fr))
            };
            assert_not_torn(&probes::snapshot_missing_recheck(&fr));
            writer.join().unwrap();
        },
    );
    assert!(
        v.message.contains("torn"),
        "expected a torn-record assertion, got: {}",
        v.message
    );
}
