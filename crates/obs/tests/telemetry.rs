//! Live-telemetry integration coverage: trace-context propagation into
//! spans and exports, the always-on flight recorder (wrap-around,
//! concurrency, panic survival), the windowed-vs-cumulative divergence
//! regression promised by the `metrics` module docs, and the byte-pinned
//! goldens for the Prometheus exposition and postmortem NDJSON schemas.
//!
//! The span recorder and the flight journals are process-wide state, so
//! every test that touches them serialises on one lock.

use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use disparity_model::json::Value;
use disparity_obs::export::PromText;
use disparity_obs::flight::{
    self, EventKind, EventRecord, JOURNAL_CAPACITY, POSTMORTEM_SCHEMA,
};
use disparity_obs::{
    disable, enable, format_trace_id, record_span, reset, span, take_spans, trace_scope,
    Histogram, WindowedHistogram, VIRTUAL_TRACK_BASE,
};

static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn clean_slate() {
    disable();
    reset();
}

#[test]
fn trace_scope_stamps_spans_and_restores_on_drop() {
    let _guard = exclusive();
    clean_slate();
    enable();

    {
        let _outer = trace_scope(0xaabb_ccdd_0000_0011);
        let _a = span("traced.outer");
        {
            let _inner = trace_scope(0x0000_0001_0000_0002);
            let _b = span("traced.inner");
        }
        let _c = span("traced.restored");
    }
    let _d = span("untraced");
    drop(_d);

    let spans = take_spans();
    clean_slate();
    let trace_of = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} recorded"))
            .trace
    };
    assert_eq!(trace_of("traced.outer"), 0xaabb_ccdd_0000_0011);
    assert_eq!(trace_of("traced.inner"), 0x0000_0001_0000_0002);
    assert_eq!(
        trace_of("traced.restored"),
        0xaabb_ccdd_0000_0011,
        "inner scope restores the outer trace on drop"
    );
    assert_eq!(trace_of("untraced"), 0, "no context outside every scope");
    assert_eq!(format_trace_id(0xaabb_ccdd_0000_0011), "aabbccdd-00000011");
}

#[test]
fn chrome_trace_carries_trace_id_only_for_traced_spans() {
    let _guard = exclusive();
    clean_slate();
    enable();

    {
        let _scope = trace_scope(0x0000_0003_0000_0007);
        let _s = span("traced");
    }
    {
        let _s = span("untraced");
    }
    let trace = disparity_obs::export::chrome_trace(&take_spans());
    clean_slate();

    let trace = Value::parse(&trace.to_pretty()).expect("trace parses");
    let events = trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let args_of = |name: &str| {
        events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("event {name}"))
            .get("args")
            .expect("args object")
            .clone()
    };
    assert_eq!(
        args_of("traced").get("trace_id").and_then(Value::as_str),
        Some("00000003-00000007")
    );
    assert!(args_of("untraced").get("trace_id").is_none());
}

#[test]
fn record_span_rides_a_virtual_track_under_a_trace() {
    let _guard = exclusive();
    clean_slate();
    enable();

    let t0 = Instant::now();
    let t1 = Instant::now();
    {
        let _scope = trace_scope(42);
        record_span("manual.traced", t0, t1);
    }
    record_span("manual.untraced", t0, t1);

    let spans = take_spans();
    let snap = disparity_obs::snapshot();
    clean_slate();

    let traced = spans.iter().find(|s| s.name == "manual.traced").expect("traced span");
    assert_eq!(traced.trace, 42);
    assert_eq!(traced.thread, VIRTUAL_TRACK_BASE | 42, "one virtual track per request");
    assert_eq!(traced.depth, 0);
    let untraced = spans.iter().find(|s| s.name == "manual.untraced").expect("untraced span");
    assert_eq!(untraced.trace, 0);
    assert!(untraced.thread < VIRTUAL_TRACK_BASE, "no context: the calling thread's track");
    // Manual spans feed the same auto duration histograms as RAII spans.
    let names: Vec<&str> = snap.histograms.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"span.manual.traced"));
}

#[test]
fn flight_events_are_stamped_ordered_and_survive_panics() {
    let _guard = exclusive();

    {
        let _scope = trace_scope(0x0000_0009_0000_0001);
        flight::record(EventKind::Accept, 0xaa00_0001);
        flight::record(EventKind::Admit, 0xaa00_0002);
    }
    // A panic through `catch_unwind` (the service's isolation boundary)
    // must not wedge the recorder.
    let caught = std::panic::catch_unwind(|| {
        flight::record(EventKind::Panic, 0xaa00_0003);
        panic!("deliberate");
    });
    assert!(caught.is_err());
    flight::record(EventKind::Completed, 0xaa00_0004);

    let events: Vec<EventRecord> = flight::snapshot()
        .into_iter()
        .filter(|e| (0xaa00_0001..=0xaa00_0004).contains(&e.arg))
        .collect();
    assert_eq!(events.len(), 4, "all four sentinel events present");
    // snapshot() sorts by timestamp: record order is preserved.
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        [EventKind::Accept, EventKind::Admit, EventKind::Panic, EventKind::Completed]
    );
    assert_eq!(events[0].trace, 0x0000_0009_0000_0001, "trace context stamped");
    assert_eq!(events[2].trace, 0, "no context inside catch_unwind closure");
}

#[test]
fn flight_journal_wraps_keeping_the_latest_events() {
    let _guard = exclusive();

    let trace = 0x0000_000b_0000_0001;
    let _scope = trace_scope(trace);
    let total = u64::try_from(JOURNAL_CAPACITY).unwrap() * 2;
    for i in 0..total {
        flight::record(EventKind::CacheHit, 0xbb00_0000 + i);
    }
    let mut args: Vec<u64> = flight::snapshot()
        .into_iter()
        .filter(|e| e.trace == trace)
        .map(|e| e.arg - 0xbb00_0000)
        .collect();
    args.sort_unstable();
    // The ring holds exactly the newest JOURNAL_CAPACITY events; the
    // first half was overwritten. Single-threaded, so no torn slots.
    let expect: Vec<u64> = (total - u64::try_from(JOURNAL_CAPACITY).unwrap()..total).collect();
    assert_eq!(args, expect);
}

#[test]
fn concurrent_flight_writers_lose_nothing_within_capacity() {
    let _guard = exclusive();

    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 64;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                let _scope = trace_scope(0xcc00_0000 + t);
                for i in 0..PER_THREAD {
                    flight::record(EventKind::Dequeue, i);
                }
            });
        }
    });
    let events = flight::snapshot();
    for t in 0..THREADS {
        let mut args: Vec<u64> = events
            .iter()
            .filter(|e| e.trace == 0xcc00_0000 + t)
            .map(|e| e.arg)
            .collect();
        args.sort_unstable();
        assert_eq!(
            args,
            (0..PER_THREAD).collect::<Vec<u64>>(),
            "writer {t} lost events"
        );
    }
}

/// The regression test promised by the `metrics` module docs: cumulative
/// percentiles are since-start, so after a load shift they keep telling
/// yesterday's story while the windowed view tracks the live one.
#[test]
fn windowed_and_cumulative_views_disagree_after_a_load_shift() {
    let mut cumulative = Histogram::new();
    let mut window = WindowedHistogram::new(4);

    // Phase one: a long, fast regime — 100 us latencies.
    for _ in 0..10_000 {
        cumulative.record(100);
        window.record(100);
    }
    assert_eq!(cumulative.summary().p50, window.summary().p50, "views agree in steady state");

    // The load shifts: every interval of the window rotates out the old
    // regime while a slow 10 ms regime arrives.
    for _ in 0..4 {
        window.rotate();
        for _ in 0..100 {
            cumulative.record(10_000);
            window.record(10_000);
        }
    }

    let live = window.summary();
    let since_start = cumulative.summary();
    assert!(
        live.p50 >= 10_000 / 2,
        "windowed p50 ({}) tracks the new regime",
        live.p50
    );
    assert!(
        since_start.p50 <= 200,
        "cumulative p50 ({}) is still dominated by the 10k old samples",
        since_start.p50
    );
    assert!(
        live.p50 > since_start.p50 * 10,
        "the two views must visibly disagree after the shift (window {}, cumulative {})",
        live.p50,
        since_start.p50
    );
    assert_eq!(window.rotations(), 4);
    // The cumulative count keeps everything; the window forgot phase one.
    assert_eq!(since_start.count, 10_400);
    assert_eq!(window.merged().count(), 400);
}

/// Byte-pinned golden for the Prometheus-style exposition builder.
/// Changing this string is a breaking change to the `metrics` op's
/// exposition output and needs a schema/consumer review.
const EXPOSITION_GOLDEN: &str = concat!(
    "# TYPE disparity_requests_total counter\n",
    "disparity_requests_total{outcome=\"completed\"} 7\n",
    "disparity_requests_total{outcome=\"overloaded\"} 2\n",
    "# TYPE disparity_queue_depth gauge\n",
    "disparity_queue_depth 3\n",
    "# TYPE disparity_request_latency_us summary\n",
    "disparity_request_latency_us{endpoint=\"disparity\",view=\"window\",quantile=\"0.5\"} 120\n",
    "disparity_request_latency_us_sum{endpoint=\"disparity\",view=\"window\"} 840\n",
    "disparity_request_latency_us_count{endpoint=\"disparity\",view=\"window\"} 7\n",
    "escaped_label{name=\"a\\\\b\\\"c\\nd\"} 1\n",
);

#[test]
fn prometheus_exposition_matches_golden() {
    let mut prom = PromText::new();
    prom.type_line("disparity_requests_total", "counter");
    prom.sample("disparity_requests_total", &[("outcome", "completed")], 7);
    prom.sample("disparity_requests_total", &[("outcome", "overloaded")], 2);
    prom.type_line("disparity_queue_depth", "gauge");
    prom.sample("disparity_queue_depth", &[], 3);
    prom.type_line("disparity_request_latency_us", "summary");
    prom.sample(
        "disparity_request_latency_us",
        &[("endpoint", "disparity"), ("view", "window"), ("quantile", "0.5")],
        120,
    );
    prom.sample(
        "disparity_request_latency_us_sum",
        &[("endpoint", "disparity"), ("view", "window")],
        840,
    );
    prom.sample(
        "disparity_request_latency_us_count",
        &[("endpoint", "disparity"), ("view", "window")],
        7,
    );
    prom.sample("escaped_label", &[("name", "a\\b\"c\nd")], 1);
    assert_eq!(prom.finish(), EXPOSITION_GOLDEN);
}

/// Byte-pinned golden for the postmortem NDJSON document. Changing these
/// bytes is a breaking change to `disparity-obs/postmortem-v1` and needs
/// a schema bump.
const POSTMORTEM_GOLDEN: &str = concat!(
    "{\"schema\":\"disparity-obs/postmortem-v1\",\"reason\":\"panic\",",
    "\"trace_id\":\"00000002-00000005\",\"events\":2}\n",
    "{\"ts_ns\":1500,\"thread\":3,\"trace_id\":\"00000002-00000005\",",
    "\"event\":\"accept\",\"arg\":0}\n",
    "{\"ts_ns\":2500,\"thread\":3,\"trace_id\":\"00000002-00000005\",",
    "\"event\":\"panic\",\"arg\":81985529216486895}\n",
);

#[test]
fn postmortem_ndjson_matches_golden() {
    let trace = 0x0000_0002_0000_0005;
    let events = [
        EventRecord {
            ts_ns: 1500,
            thread: 3,
            trace,
            kind: EventKind::Accept,
            arg: 0,
        },
        EventRecord {
            ts_ns: 2500,
            thread: 3,
            trace,
            kind: EventKind::Panic,
            arg: 0x0123_4567_89ab_cdef,
        },
    ];
    let doc = flight::render_postmortem("panic", trace, &events);
    assert_eq!(doc, POSTMORTEM_GOLDEN);
    // Every line of the document is independently parseable JSON, and
    // the header names the schema.
    let mut lines = doc.lines();
    let header = Value::parse(lines.next().unwrap()).expect("header parses");
    assert_eq!(header.get("schema").and_then(Value::as_str), Some(POSTMORTEM_SCHEMA));
    assert_eq!(header.get("events").and_then(Value::as_i64), Some(2));
    for line in lines {
        Value::parse(line).expect("event line parses");
    }
}
