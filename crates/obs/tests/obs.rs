//! Integration tests exercising the global recorder singleton.
//!
//! The recorder is process-wide state, so every test serialises on one
//! lock and restores the disabled/empty state before releasing it.

use std::sync::{Mutex, MutexGuard};

use disparity_obs::{
    counter_add, disable, enable, observe, reset, snapshot, span, take_spans,
};

static LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn clean_slate() {
    disable();
    reset();
}

#[test]
fn disabled_path_is_a_no_op() {
    let _guard = exclusive();
    clean_slate();

    {
        let mut s = span("never.recorded");
        assert!(!s.is_recording());
        s.attr("key", 7_i64);
    }
    counter_add("never.counter", 3);
    observe("never.histogram", 42);

    assert!(take_spans().is_empty());
    let snap = snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());
}

#[test]
fn span_macro_skips_attribute_evaluation_when_disabled() {
    let _guard = exclusive();
    clean_slate();

    let mut evaluated = false;
    {
        let _s = disparity_obs::span!("never.recorded", cost = {
            evaluated = true;
            1_i64
        });
    }
    assert!(!evaluated, "attr expressions must not run while disabled");
    assert!(take_spans().is_empty());
}

#[test]
fn nested_spans_close_in_order_and_nest_in_time() {
    let _guard = exclusive();
    clean_slate();
    enable();

    {
        let mut outer = span("outer");
        assert!(outer.is_recording());
        outer.attr("tasks", 5_usize);
        {
            let _inner = disparity_obs::span!("inner", index = 1_u32);
        }
    }

    let snap = snapshot();
    let spans = take_spans();
    clean_slate();

    assert_eq!(spans.len(), 2);
    // Spans record on close, so the inner one lands first.
    assert_eq!(spans[0].name, "inner");
    assert_eq!(spans[1].name, "outer");
    assert_eq!(spans[0].depth, 1);
    assert_eq!(spans[1].depth, 0);
    assert_eq!(spans[0].thread, spans[1].thread);
    // Temporal containment: inner ⊆ outer.
    let (inner, outer) = (&spans[0], &spans[1]);
    assert!(outer.start_ns <= inner.start_ns);
    assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    // Attributes survive.
    assert_eq!(outer.attrs.len(), 1);
    assert_eq!(outer.attrs[0].0, "tasks");
    // Each closed span fed its auto duration histogram.
    let names: Vec<&str> = snap.histograms.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"span.inner"));
    assert!(names.contains(&"span.outer"));
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = exclusive();
    clean_slate();
    enable();

    const THREADS: usize = 8;
    const PER_THREAD: u64 = 1_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    counter_add("concurrent.counter", 1);
                }
            });
        }
    });

    let snap = snapshot();
    clean_slate();
    let total = snap
        .counters
        .iter()
        .find(|(name, _)| name == "concurrent.counter")
        .map(|(_, v)| *v);
    assert_eq!(total, Some(THREADS as u64 * PER_THREAD));
}

#[test]
fn exporters_round_trip_through_in_tree_json() {
    let _guard = exclusive();
    clean_slate();
    enable();

    {
        let _phase = disparity_obs::span!("export.phase", kind = "smoke");
    }
    counter_add("export.counter", 2);
    observe("export.histogram", 1024);

    let trace = disparity_obs::export::chrome_trace(&take_spans());
    let report = disparity_obs::export::metrics_report(&snapshot());
    clean_slate();

    let trace = disparity_model::json::Value::parse(&trace.to_pretty()).expect("trace parses");
    let events = trace
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), 1);
    let event = &events[0];
    assert_eq!(event.get("name").and_then(|v| v.as_str()), Some("export.phase"));
    assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
    assert!(event.get("ts").and_then(|v| v.as_f64()).is_some());
    assert_eq!(
        event.get("args").and_then(|a| a.get("kind")).and_then(|v| v.as_str()),
        Some("smoke")
    );

    let report = disparity_model::json::Value::parse(&report.to_pretty()).expect("report parses");
    assert_eq!(
        report.get("schema").and_then(|v| v.as_str()),
        Some(disparity_obs::export::METRICS_SCHEMA)
    );
    assert_eq!(
        report
            .get("counters")
            .and_then(|c| c.get("export.counter"))
            .and_then(|v| v.as_i64()),
        Some(2)
    );
    let hist = report
        .get("histograms")
        .and_then(|h| h.get("export.histogram"))
        .expect("histogram exported");
    assert_eq!(hist.get("min").and_then(|v| v.as_i64()), Some(1024));
    assert_eq!(hist.get("p50").and_then(|v| v.as_i64()), Some(1024));
}
