//! Transports: the TCP listener and the stdin batch runner.
//!
//! Both speak the NDJSON protocol from [`crate::proto`] and feed the
//! shared [`Service`]. TCP connections get a reader thread (parse +
//! admission) and a writer thread (responses in completion order, `id`
//! echo correlates); batch mode reads every line, submits with
//! backpressure, and restores input order before printing.
//!
//! The reader is hardened against hostile or broken clients
//! ([`ServeOptions`]): a request line larger than the byte cap is
//! answered with an error and discarded without buffering it, a line
//! that stays incomplete past the read deadline closes the connection
//! (slow-loris defense), and malformed bytes — including invalid UTF-8 —
//! get an error response while the connection stays alive. A line left
//! unterminated at EOF is treated as truncated and dropped, never
//! parsed. Write failures and connection resets tear the connection
//! down without leaking queue slots: accepted jobs always drain through
//! the workers, replies to a dead client are simply discarded.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) runs the drain
//! sequence: stop admissions → wake the accept loop → half-close client
//! read sides → drain the queue through the workers → join writers, so
//! every accepted request still gets its terminal response.

use std::io::{BufRead, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use disparity_model::json::Value;

use crate::proto::{attach_trace, response_line, Request, ResponseBody, Status, TraceId};
use crate::service::{Reply, Service};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Transport hardening knobs for [`serve_with`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Maximum bytes in one request line. Longer lines are answered with
    /// an error and discarded as they stream in (never buffered whole);
    /// the connection stays alive. Specs are a few KiB, so the default
    /// (1 MiB) is generous.
    pub max_request_bytes: usize,
    /// Maximum wall time between the first byte of a request line and
    /// its terminating newline. A client that dribbles bytes slower than
    /// this (slow loris) gets an error response and the connection is
    /// closed. Idle connections (no partial line pending) are unaffected.
    /// `None` disables the deadline.
    pub read_deadline: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_request_bytes: 1 << 20,
            read_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// Poll granularity of the reader's timeout loop: how often a blocked
/// read wakes to check the line deadline and the drain flag.
const READ_POLL: Duration = Duration::from_millis(100);

struct ServerShared {
    service: Arc<Service>,
    options: ServeOptions,
    closing: AtomicBool,
    /// Read-half clones of live client sockets keyed by connection id,
    /// for shutdown half-close. Readers remove their entry on exit, so
    /// the map tracks only live connections.
    client_reads: Mutex<std::collections::HashMap<u64, TcpStream>>,
    /// Reader/writer threads of live connections; finished handles are
    /// reaped on each accept.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
}

/// A running TCP server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl core::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServerShared")
            // conc: debug display only
            .field("closing", &self.closing.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts accepting
/// with default [`ServeOptions`].
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(addr: &str, service: Arc<Service>) -> std::io::Result<ServerHandle> {
    serve_with(addr, service, ServeOptions::default())
}

/// [`serve`] with explicit transport-hardening options.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_with(
    addr: &str,
    service: Arc<Service>,
    options: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        service,
        options,
        closing: AtomicBool::new(false),
        client_reads: Mutex::new(std::collections::HashMap::new()),
        conn_threads: Mutex::new(Vec::new()),
        // Connection ids start at 1: id 0 is reserved for batch mode, so
        // a trace id's high half distinguishes the two transports.
        next_conn_id: AtomicU64::new(1),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr: local,
        shared,
        accept_thread: Mutex::new(Some(accept_thread)),
    })
}

impl ServerHandle {
    /// The bound address (the actual port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served service (for stats and shutdown hooks).
    #[must_use]
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.shared.service)
    }

    /// Graceful shutdown: drains every accepted request, then stops.
    /// Safe to call more than once; later calls are no-ops.
    pub fn shutdown(&self) {
        // conc: once-only shutdown latch on a cold path; SeqCst pairs with
        // the accept loop's load and keeps the drain handshake simple
        if self.shared.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        // 1. Wake the accept loop (it checks `closing` per connection).
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = lock(&self.accept_thread).take() {
            let _ = h.join();
        }
        // 2. Half-close client read sides: readers see EOF, stop feeding
        //    the queue; anything already read is in flight and will drain.
        for (_, stream) in lock(&self.shared.client_reads).drain() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // 3. Close the intake and let the workers finish accepted jobs.
        self.shared.service.shutdown();
        // 4. Writers exit once the last reply sender drops; join them.
        let threads = std::mem::take(&mut *lock(&self.shared.conn_threads));
        for h in threads {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.closing.load(Ordering::SeqCst) { // conc: pairs with shutdown's swap
            break;
        }
        let Ok(stream) = stream else { continue };
        disparity_obs::counter_add("service.connections", 1);
        spawn_connection(stream, shared);
    }
}

fn spawn_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // conc: unique-id allocation; per-connection, so ordering cost is noise
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    lock(&shared.client_reads).insert(conn_id, read_half);
    let (tx, rx) = channel::<Reply>();
    let reader_shared = Arc::clone(shared);
    let reader = std::thread::spawn(move || {
        connection_reader(&stream, conn_id, &reader_shared, &tx);
        lock(&reader_shared.client_reads).remove(&conn_id);
    });
    let writer = std::thread::spawn(move || connection_writer(write_half, &rx));
    let mut threads = lock(&shared.conn_threads);
    // Reap handles of connections that already finished so a long-lived
    // server doesn't accumulate one pair per past connection.
    threads.retain(|h| !h.is_finished());
    threads.push(reader);
    threads.push(writer);
}

/// One full line was assembled (newline seen): parse and submit, or
/// answer the parse error in place. Blank lines get no response, matching
/// batch mode. Invalid UTF-8 is replaced lossily so it fails in the JSON
/// parser with an ordinary error response instead of killing the
/// connection.
///
/// The request's trace id is derived here — connection id high half,
/// this connection's line sequence low half — so every response on the
/// wire carries one, parse errors included.
fn handle_line(
    bytes: &[u8],
    seq: &mut u64,
    conn_id: u64,
    service: &Arc<Service>,
    tx: &Sender<Reply>,
) {
    let line = String::from_utf8_lossy(bytes);
    if line.trim().is_empty() {
        return;
    }
    *seq += 1;
    let trace = TraceId::new(conn_id, *seq);
    match Request::parse(&line) {
        Ok(request) => {
            let _ = service.submit(request, *seq, trace, tx);
        }
        Err(e) => Service::reply_parse_error(&e, *seq, trace, tx),
    }
}

/// Sends an out-of-band transport error (no request id is available —
/// the offending line never parsed) without going through the queue.
/// Transport errors consume a sequence number, so they too get a unique
/// trace id.
fn transport_error(seq: &mut u64, conn_id: u64, tx: &Sender<Reply>, message: &str) {
    *seq += 1;
    let line = response_line(&Value::Null, Status::Error, ResponseBody::Error(message.into()));
    let _ = tx.send(Reply {
        seq: *seq,
        line: attach_trace(&line, TraceId::new(conn_id, *seq)),
    });
}

/// Reads request lines until EOF: parse, then admission-controlled
/// submit. Malformed lines and refused requests are answered immediately
/// — exactly one response per non-blank line, always.
///
/// Hardened per [`ServeOptions`]: oversized lines are discarded as they
/// stream in (one error response, connection stays alive), a line that
/// stays unterminated past the read deadline gets an error response and
/// the connection is closed, and a partial line at EOF is dropped as
/// truncated rather than parsed.
fn connection_reader(
    stream: &TcpStream,
    conn_id: u64,
    shared: &Arc<ServerShared>,
    tx: &Sender<Reply>,
) {
    let service = &shared.service;
    let options = &shared.options;
    // A finite timeout turns blocking reads into a poll loop so the
    // line deadline and shutdown are observed even when no bytes arrive.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut stream = stream;
    let mut chunk = [0u8; 8192];
    let mut line: Vec<u8> = Vec::new();
    let mut seq = 0u64;
    // True while skipping the rest of an oversized line; the error
    // response has already been sent.
    let mut discarding = false;
    // Set when the first byte of a line arrives, cleared at its newline;
    // the read deadline measures this span.
    let mut line_started: Option<Instant> = None;
    loop {
        match stream.read(&mut chunk) {
            // EOF: a pending partial line is truncated — drop it, never
            // parse a line the client did not finish.
            Ok(0) => break,
            Ok(n) => {
                for &byte in &chunk[..n] {
                    if byte == b'\n' {
                        if discarding {
                            discarding = false;
                        } else {
                            handle_line(&line, &mut seq, conn_id, service, tx);
                        }
                        line.clear();
                        line_started = None;
                        continue;
                    }
                    if discarding {
                        continue;
                    }
                    if line_started.is_none() {
                        line_started = Some(Instant::now());
                    }
                    line.push(byte);
                    if line.len() > options.max_request_bytes {
                        disparity_obs::counter_add("service.oversized_lines", 1);
                        transport_error(
                            &mut seq,
                            conn_id,
                            tx,
                            &format!(
                                "request line exceeds the {}-byte cap and was discarded",
                                options.max_request_bytes
                            ),
                        );
                        line.clear();
                        discarding = true;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            // Reset or other hard error: tear down; in-flight jobs still
            // drain through the workers (their replies go nowhere).
            Err(_) => break,
        }
        if let (Some(deadline), Some(started)) = (options.read_deadline, line_started) {
            if started.elapsed() >= deadline {
                disparity_obs::counter_add("service.read_deadline_closes", 1);
                transport_error(
                    &mut seq,
                    conn_id,
                    tx,
                    &format!(
                        "request line not completed within {}ms; closing connection",
                        deadline.as_millis()
                    ),
                );
                let _ = stream.shutdown(Shutdown::Read);
                break;
            }
        }
    }
}

/// Writes replies in completion order, one line each, flushing per line
/// so single-request clients never wait on a buffer. A write failure
/// (client reset) shuts the socket down so the reader exits promptly;
/// remaining replies drain into the closed channel and are discarded.
fn connection_writer(stream: TcpStream, rx: &Receiver<Reply>) {
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(reply) = rx.recv() {
        if out
            .write_all(reply.line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .is_err()
        {
            let _ = out.get_ref().shutdown(Shutdown::Both);
            break;
        }
    }
}

/// Batch mode: reads NDJSON requests from `input`, submits them with
/// backpressure, and writes responses to `output` in **input order**.
///
/// Returns the number of request lines handled. Invalid UTF-8 in a line
/// is decoded lossily so it fails in the JSON parser with an ordinary
/// error response rather than aborting the whole batch.
///
/// # Errors
///
/// Propagates I/O errors from `input`/`output`.
pub fn run_batch(
    service: &Arc<Service>,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> std::io::Result<usize> {
    let (tx, rx) = channel::<Reply>();
    let mut submitted = 0u64;
    let mut raw: Vec<u8> = Vec::new();
    loop {
        raw.clear();
        if input.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        let line = String::from_utf8_lossy(&raw);
        let line = line.trim_end_matches('\n');
        if line.trim().is_empty() {
            continue;
        }
        submitted += 1;
        // Batch mode is connection 0; the line number is the sequence.
        let trace = TraceId::new(0, submitted);
        match Request::parse(line) {
            Ok(request) => {
                let _ = service.submit_blocking(request, submitted, trace, &tx);
            }
            Err(e) => Service::reply_parse_error(&e, submitted, trace, &tx),
        }
    }
    drop(tx);
    let mut replies: Vec<Reply> = Vec::with_capacity(usize::try_from(submitted).unwrap_or(0));
    for _ in 0..submitted {
        match rx.recv() {
            Ok(reply) => replies.push(reply),
            Err(_) => break,
        }
    }
    replies.sort_by_key(|r| r.seq);
    for reply in &replies {
        output.write_all(reply.line.as_bytes())?;
        output.write_all(b"\n")?;
    }
    output.flush()?;
    Ok(replies.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use disparity_model::json::Value;

    #[test]
    fn batch_restores_input_order() {
        let service = Service::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let mut input: Vec<u8> = Vec::new();
        for i in 0..20 {
            input.extend_from_slice(
                format!("{{\"id\":{i},\"op\":\"ping\"}}\n").as_bytes(),
            );
        }
        let mut out = Vec::new();
        let n = run_batch(&service, &mut input.as_slice(), &mut out).unwrap();
        assert_eq!(n, 20);
        let text = String::from_utf8(out).unwrap();
        let ids: Vec<i64> = text
            .lines()
            .map(|l| Value::parse(l).unwrap().get("id").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        service.shutdown();
    }

    #[test]
    fn batch_answers_malformed_lines_in_place() {
        let service = Service::start(ServiceConfig::default());
        let input = b"{\"id\":1,\"op\":\"ping\"}\nnot json\n{\"id\":3,\"op\":\"ping\"}\n";
        let mut out = Vec::new();
        let n = run_batch(&service, &mut input.as_slice(), &mut out).unwrap();
        assert_eq!(n, 3);
        let text = String::from_utf8(out).unwrap();
        let statuses: Vec<String> = text
            .lines()
            .map(|l| {
                Value::parse(l)
                    .unwrap()
                    .get("status")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(statuses, ["ok", "error", "ok"]);
        service.shutdown();
    }
}
