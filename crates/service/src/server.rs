//! Transports: the TCP listener and the stdin batch runner.
//!
//! Both speak the NDJSON protocol from [`crate::proto`] and feed the
//! shared [`Service`]. TCP connections get a reader thread (parse +
//! admission) and a writer thread (responses in completion order, `id`
//! echo correlates); batch mode reads every line, submits with
//! backpressure, and restores input order before printing.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) runs the drain
//! sequence: stop admissions → wake the accept loop → half-close client
//! read sides → drain the queue through the workers → join writers, so
//! every accepted request still gets its terminal response.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use crate::proto::Request;
use crate::service::{Reply, Service};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct ServerShared {
    service: Arc<Service>,
    closing: AtomicBool,
    /// Read-half clones of live client sockets, for shutdown half-close.
    client_reads: Mutex<Vec<TcpStream>>,
    /// Reader/writer threads of every connection ever accepted.
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running TCP server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl core::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServerShared")
            .field("closing", &self.closing.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts accepting.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(addr: &str, service: Arc<Service>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        service,
        closing: AtomicBool::new(false),
        client_reads: Mutex::new(Vec::new()),
        conn_threads: Mutex::new(Vec::new()),
    });
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
    Ok(ServerHandle {
        addr: local,
        shared,
        accept_thread: Mutex::new(Some(accept_thread)),
    })
}

impl ServerHandle {
    /// The bound address (the actual port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served service (for stats and shutdown hooks).
    #[must_use]
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.shared.service)
    }

    /// Graceful shutdown: drains every accepted request, then stops.
    /// Safe to call more than once; later calls are no-ops.
    pub fn shutdown(&self) {
        if self.shared.closing.swap(true, Ordering::SeqCst) {
            return;
        }
        // 1. Wake the accept loop (it checks `closing` per connection).
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = lock(&self.accept_thread).take() {
            let _ = h.join();
        }
        // 2. Half-close client read sides: readers see EOF, stop feeding
        //    the queue; anything already read is in flight and will drain.
        for stream in lock(&self.shared.client_reads).drain(..) {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // 3. Close the intake and let the workers finish accepted jobs.
        self.shared.service.shutdown();
        // 4. Writers exit once the last reply sender drops; join them.
        let threads = std::mem::take(&mut *lock(&self.shared.conn_threads));
        for h in threads {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    for stream in listener.incoming() {
        if shared.closing.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        disparity_obs::counter_add("service.connections", 1);
        spawn_connection(stream, shared);
    }
}

fn spawn_connection(stream: TcpStream, shared: &Arc<ServerShared>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    lock(&shared.client_reads).push(read_half);
    let (tx, rx) = channel::<Reply>();
    let reader_shared = Arc::clone(shared);
    let reader =
        std::thread::spawn(move || connection_reader(stream, &reader_shared.service, &tx));
    let writer = std::thread::spawn(move || connection_writer(write_half, &rx));
    let mut threads = lock(&shared.conn_threads);
    threads.push(reader);
    threads.push(writer);
}

/// Reads request lines until EOF: parse, then admission-controlled
/// submit. Malformed lines and refused requests are answered immediately
/// — exactly one response per line, always.
fn connection_reader(stream: TcpStream, service: &Arc<Service>, tx: &Sender<Reply>) {
    let reader = BufReader::new(stream);
    let mut seq = 0u64;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        seq += 1;
        match Request::parse(&line) {
            Ok(request) => {
                let _ = service.submit(request, seq, tx);
            }
            Err(e) => Service::reply_parse_error(&e, seq, tx),
        }
    }
}

/// Writes replies in completion order, one line each, flushing per line
/// so single-request clients never wait on a buffer.
fn connection_writer(stream: TcpStream, rx: &Receiver<Reply>) {
    let mut out = std::io::BufWriter::new(stream);
    while let Ok(reply) = rx.recv() {
        if out
            .write_all(reply.line.as_bytes())
            .and_then(|()| out.write_all(b"\n"))
            .and_then(|()| out.flush())
            .is_err()
        {
            break;
        }
    }
}

/// Batch mode: reads NDJSON requests from `input`, submits them with
/// backpressure, and writes responses to `output` in **input order**.
///
/// Returns the number of request lines handled.
///
/// # Errors
///
/// Propagates I/O errors from `input`/`output`.
pub fn run_batch(
    service: &Arc<Service>,
    input: &mut dyn BufRead,
    output: &mut dyn Write,
) -> std::io::Result<usize> {
    let (tx, rx) = channel::<Reply>();
    let mut submitted = 0u64;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        submitted += 1;
        match Request::parse(&line) {
            Ok(request) => {
                let _ = service.submit_blocking(request, submitted, &tx);
            }
            Err(e) => Service::reply_parse_error(&e, submitted, &tx),
        }
    }
    drop(tx);
    let mut replies: Vec<Reply> = Vec::with_capacity(usize::try_from(submitted).unwrap_or(0));
    for _ in 0..submitted {
        match rx.recv() {
            Ok(reply) => replies.push(reply),
            Err(_) => break,
        }
    }
    replies.sort_by_key(|r| r.seq);
    for reply in &replies {
        output.write_all(reply.line.as_bytes())?;
        output.write_all(b"\n")?;
    }
    output.flush()?;
    Ok(replies.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use disparity_model::json::Value;

    #[test]
    fn batch_restores_input_order() {
        let service = Service::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let mut input: Vec<u8> = Vec::new();
        for i in 0..20 {
            input.extend_from_slice(
                format!("{{\"id\":{i},\"op\":\"ping\"}}\n").as_bytes(),
            );
        }
        let mut out = Vec::new();
        let n = run_batch(&service, &mut input.as_slice(), &mut out).unwrap();
        assert_eq!(n, 20);
        let text = String::from_utf8(out).unwrap();
        let ids: Vec<i64> = text
            .lines()
            .map(|l| Value::parse(l).unwrap().get("id").unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        service.shutdown();
    }

    #[test]
    fn batch_answers_malformed_lines_in_place() {
        let service = Service::start(ServiceConfig::default());
        let input = b"{\"id\":1,\"op\":\"ping\"}\nnot json\n{\"id\":3,\"op\":\"ping\"}\n";
        let mut out = Vec::new();
        let n = run_batch(&service, &mut input.as_slice(), &mut out).unwrap();
        assert_eq!(n, 3);
        let text = String::from_utf8(out).unwrap();
        let statuses: Vec<String> = text
            .lines()
            .map(|l| {
                Value::parse(l)
                    .unwrap()
                    .get("status")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(statuses, ["ok", "error", "ok"]);
        service.shutdown();
    }
}
