//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One request is one JSON object on one line; the server answers with
//! exactly one JSON object on one line, echoing the request's `id`.
//! Encoding goes through the in-tree codec ([`disparity_model::json`]),
//! which escapes control characters, so a response line is always valid
//! JSON and always exactly one line.
//!
//! The result encoders ([`encode_disparity_result`] and friends) are pure
//! functions of the analysis output. The byte-identity tests call them on
//! reports produced by a direct [`AnalysisEngine`] run and compare against
//! server bytes — nothing request-scoped (cache hits, queue position,
//! timing) may leak into them.
//!
//! The one request-scoped member a wire response *does* carry is the
//! `trace_id`: transports stamp it onto the already-encoded line with
//! [`attach_trace`] as the very last step, and verifiers peel it back off
//! with [`split_trace`] to recover the pure bytes. The encoders and
//! [`response_line`] itself never see it.
//!
//! [`AnalysisEngine`]: disparity_core::engine::AnalysisEngine

use disparity_core::buffering::{BufferedSide, OptimizationOutcome};
use disparity_core::disparity::DisparityReport;
use disparity_core::pairwise::Method;
use disparity_model::chain::Chain;
use disparity_model::edit::SpecEdit;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::json::{self, Value};
use disparity_model::spec::SystemSpec;
use disparity_model::time::Duration;
use disparity_opt::{BackendChoice, DisparityTarget, GlobalPlan, DEFAULT_BEAM_WIDTH};

/// Default chain-enumeration budget (mirrors
/// [`disparity_core::disparity::AnalysisConfig`]).
pub const DEFAULT_CHAIN_LIMIT: usize = 4096;

/// Default greedy-buffering round budget.
pub const DEFAULT_MAX_ROUNDS: usize = 4;

/// What a request asks the server to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Worst-case time disparity of one task (Theorem 1/2, §III).
    Disparity {
        /// The analyzed spec.
        spec: SystemSpec,
        /// Name of the task to analyze.
        task: String,
        /// Which pairwise theorem to apply.
        method: Method,
        /// Chain-enumeration budget.
        chain_limit: usize,
    },
    /// WCBT/BCBT of one explicit chain (Lemmas 4–6).
    Backward {
        /// The analyzed spec.
        spec: SystemSpec,
        /// Task names along the chain, head to tail.
        chain: Vec<String>,
    },
    /// Algorithm 1 buffer sizing (greedy multi-round extension).
    Buffer {
        /// The analyzed spec.
        spec: SystemSpec,
        /// Name of the fusion task to optimize.
        task: String,
        /// Which pairwise theorem scores each round.
        method: Method,
        /// Chain-enumeration budget.
        chain_limit: usize,
        /// Greedy round budget.
        max_rounds: usize,
    },
    /// Incremental re-analysis: apply `edits` to an already-cached base
    /// spec (named by its canonical hash) and answer the same query as
    /// [`Op::Disparity`] would for the edited system — byte-identical
    /// result, without resending or rebuilding the full spec.
    Patch {
        /// [`SystemSpec::canonical_hash`] of the base spec, which must
        /// already be cached (send the full spec once first).
        base: u64,
        /// Edits applied to the base spec, in order.
        edits: Vec<SpecEdit>,
        /// Name of the task to analyze in the edited system.
        task: String,
        /// Which pairwise theorem to apply.
        method: Method,
        /// Chain-enumeration budget.
        chain_limit: usize,
    },
    /// Global buffer-plan optimization (§IV generalized): search
    /// per-channel FIFO capacities under a total extra-slot budget and
    /// optional per-task disparity targets, scored through the
    /// incremental engine, validated against cold re-analysis.
    Optimize {
        /// The analyzed spec (exactly one of `spec` / `base`).
        spec: Option<SystemSpec>,
        /// Canonical hash of an already-cached base spec (exactly one
        /// of `spec` / `base`; mirrors [`Op::Patch`]).
        base: Option<u64>,
        /// Total extra FIFO slots the plan may allocate.
        budget_slots: usize,
        /// Optional per-task disparity targets (soft).
        targets: Vec<DisparityTarget>,
        /// Which search backend runs.
        backend: BackendChoice,
        /// Seed of the deterministic tie-break.
        seed: u64,
        /// Admit plans that introduce new D007 (over-buffered channel)
        /// findings. Off by default: optimizing a clean spec keeps it
        /// clean.
        allow_overbuffering: bool,
        /// Which pairwise theorem scores candidates.
        method: Method,
        /// Chain-enumeration budget.
        chain_limit: usize,
        /// When set, validate the optimized spec by simulating this
        /// many milliseconds and report observed per-task disparities.
        sim_horizon_ms: Option<u64>,
    },
    /// Server statistics (counters, queue depth, latency percentiles).
    Stats,
    /// Live metrics: Prometheus-style text exposition plus sliding-window
    /// latency percentiles per endpoint.
    Metrics,
    /// Flight-recorder dump: write a postmortem NDJSON artifact (when the
    /// server has a postmortem directory configured) and report its path.
    Dump,
    /// Worker-pool health: configured vs. alive workers, respawns,
    /// quarantine size, drain flag.
    Health,
    /// Liveness probe.
    Ping,
    /// Hold a worker for the given number of milliseconds (testing aid:
    /// saturates the queue deterministically).
    Sleep {
        /// How long the worker sleeps.
        millis: u64,
    },
    /// Panic while processing (testing aid: exercises panic isolation,
    /// the worker supervisor, and spec quarantine deterministically).
    Panic {
        /// The spec whose hash takes the quarantine strike.
        spec: SystemSpec,
        /// How the panic is delivered.
        kind: PanicKind,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// How an [`Op::Panic`] request panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// Panic inside the per-request isolation boundary: the client gets a
    /// structured `internal_error` response and the worker survives.
    Unwind,
    /// Panic *outside* the boundary, killing the worker thread: the
    /// request goes unanswered and the supervisor must respawn the
    /// worker. Models a bug the isolation layer failed to contain.
    Worker,
}

impl Op {
    /// The spec a request carries, when its op analyzes one. Drives the
    /// quarantine check and the `internal_error` hash echo.
    ///
    /// [`Op::Patch`] carries no spec (only a hash and edits), so — like
    /// `ping`/`stats` — it is outside quarantine tracking; its derived
    /// spec is admitted through the same diag/schedulability gates as a
    /// full-spec request instead.
    #[must_use]
    pub fn spec(&self) -> Option<&SystemSpec> {
        match self {
            Op::Disparity { spec, .. }
            | Op::Backward { spec, .. }
            | Op::Buffer { spec, .. }
            | Op::Panic { spec, .. } => Some(spec),
            Op::Optimize { spec, .. } => spec.as_ref(),
            Op::Patch { .. }
            | Op::Stats
            | Op::Metrics
            | Op::Dump
            | Op::Health
            | Op::Ping
            | Op::Sleep { .. }
            | Op::Shutdown => None,
        }
    }
}

/// A request-scoped trace id: connection id in the high 32 bits, the
/// connection's request sequence number in the low 32 bits. Echoed as
/// `trace_id` in every response line and installed as the worker's span
/// context (see [`disparity_obs::trace_scope`]), so a wire response, its
/// span tree in the Chrome trace, and its flight-recorder events all
/// correlate on the same token. Batch mode uses connection id 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// Compose from a connection id and that connection's request
    /// sequence number (both truncated to 32 bits).
    #[must_use]
    pub fn new(conn: u64, seq: u64) -> Self {
        TraceId(((conn & 0xffff_ffff) << 32) | (seq & 0xffff_ffff))
    }

    /// The raw 64-bit token (what [`disparity_obs::trace_scope`] takes).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for TraceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&disparity_obs::format_trace_id(self.0))
    }
}

/// Stamp `trace` onto an already-encoded response line as its trailing
/// `trace_id` member. Must be the transport's last step before the bytes
/// hit the wire: everything before the stamp stays byte-identical to a
/// direct engine run, which is what the byte-identity oracles compare.
#[must_use]
pub fn attach_trace(line: &str, trace: TraceId) -> String {
    let Some(body) = line.strip_suffix('}') else {
        // Not a JSON object (can't happen for lines we build); pass through.
        return line.to_string();
    };
    let sep = if body.ends_with('{') { "" } else { "," };
    format!("{body}{sep}\"trace_id\":\"{trace}\"}}")
}

/// Undo [`attach_trace`]: split a wire response into its pure line (the
/// bytes a direct engine run encodes to) and the `trace_id` text.
/// Returns `None` when the line carries no trailing trace stamp.
#[must_use]
pub fn split_trace(line: &str) -> Option<(String, String)> {
    let marker = ",\"trace_id\":\"";
    let start = line.rfind(marker)?;
    let id = line[start + marker.len()..].strip_suffix("\"}")?;
    Some((format!("{}}}", &line[..start]), id.to_string()))
}

/// Whether `id` spells a well-formed trace id: two dash-separated
/// 8-digit lowercase-hex halves (`HHHHHHHH-HHHHHHHH`).
#[must_use]
pub fn is_trace_id(id: &str) -> bool {
    let bytes = id.as_bytes();
    bytes.len() == 17
        && bytes[8] == b'-'
        && bytes
            .iter()
            .enumerate()
            .all(|(i, &b)| i == 8 || b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// A parsed request: the echoed `id` plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation value, echoed verbatim in the response.
    pub id: Value,
    /// Optional soft deadline in milliseconds; the analysis is abandoned
    /// (status `timeout`) once it expires.
    pub deadline_ms: Option<u64>,
    /// The operation.
    pub op: Op,
}

/// Why a request could not be parsed into a [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoError {
    message: String,
    /// The request `id`, when it could at least be extracted.
    pub id: Value,
}

impl ProtoError {
    fn new(id: &Value, message: impl Into<String>) -> Self {
        ProtoError {
            message: message.into(),
            id: id.clone(),
        }
    }
}

impl core::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Terminal status of a response. Every accepted request line gets exactly
/// one response carrying one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The operation succeeded; `result` holds the payload.
    Ok,
    /// The request was malformed or the analysis failed.
    Error,
    /// Admission control bounced the request (queue full). Retry later.
    Overloaded,
    /// The soft deadline expired before the analysis finished.
    Timeout,
    /// The diag gate rejected the spec (D-level errors), or the spec is
    /// quarantined after repeated panics.
    Rejected,
    /// The server is draining; the request was not accepted.
    ShuttingDown,
    /// The request panicked inside the server; the panic was contained
    /// and the worker survived. The error message carries the spec's
    /// `canonical_hash` (when the op had a spec) and the panic payload.
    InternalError,
}

impl Status {
    /// The wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Error => "error",
            Status::Overloaded => "overloaded",
            Status::Timeout => "timeout",
            Status::Rejected => "rejected",
            Status::ShuttingDown => "shutting_down",
            Status::InternalError => "internal_error",
        }
    }
}

fn parse_method(v: Option<&Value>) -> Result<Method, String> {
    match v {
        None => Ok(Method::ForkJoin),
        Some(v) => match v.as_str() {
            Some("independent" | "pdiff") => Ok(Method::Independent),
            Some("fork_join" | "sdiff") => Ok(Method::ForkJoin),
            Some("combined") => Ok(Method::Combined),
            _ => Err(format!(
                "\"method\" must be \"independent\", \"fork_join\", or \"combined\", got {v}"
            )),
        },
    }
}

/// The wire spelling of a [`Method`].
#[must_use]
pub fn method_str(method: Method) -> &'static str {
    match method {
        Method::Independent => "independent",
        Method::ForkJoin => "fork_join",
        Method::Combined => "combined",
    }
}

fn usize_field(obj: &Value, key: &str, default: usize) -> Result<usize, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_i64()
            .and_then(|n| usize::try_from(n).ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("\"{key}\" must be a positive integer")),
    }
}

fn u64_field(obj: &Value, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_i64()
            .and_then(|n| u64::try_from(n).ok())
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
    }
}

fn spec_field(obj: &Value, id: &Value) -> Result<SystemSpec, ProtoError> {
    let spec = obj
        .get("spec")
        .ok_or_else(|| ProtoError::new(id, "missing \"spec\""))?;
    SystemSpec::from_json(spec).map_err(|e| ProtoError::new(id, format!("bad \"spec\": {e}")))
}

fn task_field(obj: &Value, id: &Value) -> Result<String, ProtoError> {
    obj.get("task")
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::new(id, "missing or non-string \"task\""))
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] (carrying the extracted `id` when present) for
    /// malformed JSON, an unknown `op`, or missing/mistyped fields.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let value = Value::parse(line)
            .map_err(|e| ProtoError::new(&Value::Null, format!("malformed JSON: {e}")))?;
        Request::from_value(&value)
    }

    /// Parses an already-decoded request object.
    ///
    /// # Errors
    ///
    /// As for [`Request::parse`].
    pub fn from_value(value: &Value) -> Result<Request, ProtoError> {
        let id = value.get("id").cloned().unwrap_or(Value::Null);
        if value.as_object().is_none() {
            return Err(ProtoError::new(&id, "request must be a JSON object"));
        }
        let op_name = value
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| ProtoError::new(&id, "missing or non-string \"op\""))?;
        let deadline_ms = u64_field(value, "deadline_ms").map_err(|m| ProtoError::new(&id, m))?;
        let op = match op_name {
            "disparity" => Op::Disparity {
                spec: spec_field(value, &id)?,
                task: task_field(value, &id)?,
                method: parse_method(value.get("method")).map_err(|m| ProtoError::new(&id, m))?,
                chain_limit: usize_field(value, "chain_limit", DEFAULT_CHAIN_LIMIT)
                    .map_err(|m| ProtoError::new(&id, m))?,
            },
            "backward" => {
                let chain = value
                    .get("chain")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ProtoError::new(&id, "missing or non-array \"chain\""))?;
                let names: Option<Vec<String>> = chain
                    .iter()
                    .map(|v| v.as_str().map(str::to_string))
                    .collect();
                Op::Backward {
                    spec: spec_field(value, &id)?,
                    chain: names
                        .ok_or_else(|| ProtoError::new(&id, "\"chain\" must hold task names"))?,
                }
            }
            "buffer" => Op::Buffer {
                spec: spec_field(value, &id)?,
                task: task_field(value, &id)?,
                method: parse_method(value.get("method")).map_err(|m| ProtoError::new(&id, m))?,
                chain_limit: usize_field(value, "chain_limit", DEFAULT_CHAIN_LIMIT)
                    .map_err(|m| ProtoError::new(&id, m))?,
                max_rounds: usize_field(value, "max_rounds", DEFAULT_MAX_ROUNDS)
                    .map_err(|m| ProtoError::new(&id, m))?,
            },
            "patch" => {
                let base = value.get("base").and_then(Value::as_str).ok_or_else(|| {
                    ProtoError::new(&id, "missing or non-string \"base\" (16-hex canonical hash)")
                })?;
                let base = u64::from_str_radix(base, 16).map_err(|_| {
                    ProtoError::new(&id, format!("bad \"base\": {base:?} is not a hex hash"))
                })?;
                let edit_values = value
                    .get("edits")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ProtoError::new(&id, "missing or non-array \"edits\""))?;
                let mut edits = Vec::with_capacity(edit_values.len());
                for (index, edit) in edit_values.iter().enumerate() {
                    edits.push(SpecEdit::from_json(edit).map_err(|e| {
                        ProtoError::new(&id, format!("bad edit [{index}]: {e}"))
                    })?);
                }
                Op::Patch {
                    base,
                    edits,
                    task: task_field(value, &id)?,
                    method: parse_method(value.get("method"))
                        .map_err(|m| ProtoError::new(&id, m))?,
                    chain_limit: usize_field(value, "chain_limit", DEFAULT_CHAIN_LIMIT)
                        .map_err(|m| ProtoError::new(&id, m))?,
                }
            }
            "optimize" => {
                let spec = match value.get("spec") {
                    None | Some(Value::Null) => None,
                    Some(_) => Some(spec_field(value, &id)?),
                };
                let base = match value.get("base") {
                    None | Some(Value::Null) => None,
                    Some(v) => {
                        let text = v.as_str().ok_or_else(|| {
                            ProtoError::new(&id, "\"base\" must be a 16-hex canonical hash string")
                        })?;
                        Some(u64::from_str_radix(text, 16).map_err(|_| {
                            ProtoError::new(&id, format!("bad \"base\": {text:?} is not a hex hash"))
                        })?)
                    }
                };
                if spec.is_some() == base.is_some() {
                    return Err(ProtoError::new(
                        &id,
                        "\"optimize\" needs exactly one of \"spec\" or \"base\"",
                    ));
                }
                let budget_slots = value
                    .get("budget_slots")
                    .and_then(Value::as_i64)
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| {
                        ProtoError::new(&id, "missing or negative \"budget_slots\"")
                    })?;
                let mut targets = Vec::new();
                if let Some(list) = value.get("targets") {
                    let list = list.as_array().ok_or_else(|| {
                        ProtoError::new(&id, "\"targets\" must be an array")
                    })?;
                    for (index, t) in list.iter().enumerate() {
                        let task = t.get("task").and_then(Value::as_str).ok_or_else(|| {
                            ProtoError::new(&id, format!("target [{index}]: missing \"task\""))
                        })?;
                        let bound = t
                            .get("bound_ns")
                            .and_then(Value::as_i64)
                            .filter(|&n| n >= 0)
                            .ok_or_else(|| {
                                ProtoError::new(
                                    &id,
                                    format!("target [{index}]: missing or negative \"bound_ns\""),
                                )
                            })?;
                        targets.push(DisparityTarget {
                            task: task.to_string(),
                            bound: Duration::from_nanos(bound),
                        });
                    }
                }
                let beam_width = usize_field(value, "beam_width", DEFAULT_BEAM_WIDTH)
                    .map_err(|m| ProtoError::new(&id, m))?;
                let backend = match value.get("backend").and_then(Value::as_str) {
                    None | Some("auto") => BackendChoice::Auto,
                    Some("branch_and_bound") => BackendChoice::BranchAndBound,
                    Some("beam") => BackendChoice::Beam { width: beam_width },
                    Some(other) => {
                        return Err(ProtoError::new(
                            &id,
                            format!(
                                "\"backend\" must be \"auto\", \"branch_and_bound\" or \"beam\", got {other:?}"
                            ),
                        ));
                    }
                };
                Op::Optimize {
                    spec,
                    base,
                    budget_slots,
                    targets,
                    backend,
                    seed: u64_field(value, "seed")
                        .map_err(|m| ProtoError::new(&id, m))?
                        .unwrap_or(0),
                    allow_overbuffering: value
                        .get("allow_overbuffering")
                        .and_then(Value::as_bool)
                        .unwrap_or(false),
                    method: parse_method(value.get("method"))
                        .map_err(|m| ProtoError::new(&id, m))?,
                    chain_limit: usize_field(value, "chain_limit", DEFAULT_CHAIN_LIMIT)
                        .map_err(|m| ProtoError::new(&id, m))?,
                    sim_horizon_ms: u64_field(value, "sim_horizon_ms")
                        .map_err(|m| ProtoError::new(&id, m))?,
                }
            }
            "stats" => Op::Stats,
            "metrics" => Op::Metrics,
            "dump" => Op::Dump,
            "health" => Op::Health,
            "ping" => Op::Ping,
            "sleep" => Op::Sleep {
                millis: u64_field(value, "millis")
                    .map_err(|m| ProtoError::new(&id, m))?
                    .unwrap_or(10),
            },
            "panic" => Op::Panic {
                spec: spec_field(value, &id)?,
                kind: match value.get("mode").and_then(Value::as_str) {
                    None | Some("unwind") => PanicKind::Unwind,
                    Some("worker") => PanicKind::Worker,
                    Some(other) => {
                        return Err(ProtoError::new(
                            &id,
                            format!("\"mode\" must be \"unwind\" or \"worker\", got {other:?}"),
                        ));
                    }
                },
            },
            "shutdown" => Op::Shutdown,
            other => {
                return Err(ProtoError::new(&id, format!("unknown op {other:?}")));
            }
        };
        Ok(Request {
            id,
            deadline_ms,
            op,
        })
    }

    /// The endpoint label used for metrics (one per op kind).
    #[must_use]
    pub fn endpoint(&self) -> &'static str {
        match self.op {
            Op::Disparity { .. } => "disparity",
            Op::Backward { .. } => "backward",
            Op::Buffer { .. } => "buffer",
            Op::Patch { .. } => "patch",
            Op::Optimize { .. } => "optimize",
            Op::Stats => "stats",
            Op::Metrics => "metrics",
            Op::Dump => "dump",
            Op::Health => "health",
            Op::Ping => "ping",
            Op::Sleep { .. } => "sleep",
            Op::Panic { .. } => "panic",
            Op::Shutdown => "shutdown",
        }
    }
}

/// Builds a response line (no trailing newline): `id` echo, `status`, and
/// either a `result` payload or an `error` message.
#[must_use]
pub fn response_line(id: &Value, status: Status, body: ResponseBody) -> String {
    let mut members = vec![
        ("id", id.clone()),
        ("status", Value::from(status.as_str())),
    ];
    match body {
        ResponseBody::Result(v) => members.push(("result", v)),
        ResponseBody::Error(msg) => members.push(("error", Value::from(msg))),
        ResponseBody::None => {}
    }
    json::object(members).to_string()
}

/// [`response_line`] for an `ok` outcome whose `result` payload is
/// already rendered: splices the text in without re-encoding a [`Value`]
/// tree. Byte-identical to
/// `response_line(id, Status::Ok, ResponseBody::Result(v))` whenever
/// `rendered_result == v.to_string()` — the `patch` memo's warm path
/// relies on this, and `prerendered_line_matches_response_line` pins it.
#[must_use]
pub fn ok_line_prerendered(id: &Value, rendered_result: &str) -> String {
    let mut line = String::with_capacity(rendered_result.len() + 40);
    line.push_str("{\"id\":");
    line.push_str(&id.to_string());
    line.push_str(",\"status\":\"ok\",\"result\":");
    line.push_str(rendered_result);
    line.push('}');
    line
}

/// The payload half of a response.
#[derive(Debug, Clone)]
pub enum ResponseBody {
    /// Success payload for the `result` member.
    Result(Value),
    /// Failure message for the `error` member.
    Error(String),
    /// Neither (bare terminal statuses like `shutting_down`).
    None,
}

fn chain_names(graph: &CauseEffectGraph, chain: &Chain) -> Value {
    Value::Array(
        chain
            .tasks()
            .iter()
            .map(|&t| Value::from(graph.task(t).name()))
            .collect(),
    )
}

/// Encodes a [`DisparityReport`] as the `disparity` result payload.
///
/// Deterministic: depends only on the report and the graph it was computed
/// against, so a direct engine run encodes to the same bytes the server
/// returns.
#[must_use]
pub fn encode_disparity_result(graph: &CauseEffectGraph, report: &DisparityReport) -> Value {
    let critical = report.critical_pair().map_or(Value::Null, |p| {
        json::object(vec![
            ("lambda", chain_names(graph, &report.chains[p.lambda])),
            ("nu", chain_names(graph, &report.chains[p.nu])),
            ("analyzed_at", Value::from(graph.task(p.analyzed_at).name())),
            ("bound_ns", Value::Int(p.bound.as_nanos())),
        ])
    });
    json::object(vec![
        ("task", Value::from(graph.task(report.task).name())),
        ("method", Value::from(method_str(report.method))),
        ("bound_ns", Value::Int(report.bound.as_nanos())),
        ("chains", Value::from(report.chains.len())),
        ("pairs", Value::from(report.pairs.len())),
        ("critical", critical),
    ])
}

/// Encodes WCBT/BCBT bounds as the `backward` result payload.
#[must_use]
pub fn encode_backward_result(
    graph: &CauseEffectGraph,
    chain: &Chain,
    bounds: disparity_core::backward::BackwardBounds,
) -> Value {
    json::object(vec![
        ("chain", chain_names(graph, chain)),
        ("wcbt_ns", Value::Int(bounds.wcbt.as_nanos())),
        ("bcbt_ns", Value::Int(bounds.bcbt.as_nanos())),
    ])
}

/// Encodes an [`OptimizationOutcome`] as the `buffer` result payload.
#[must_use]
pub fn encode_buffer_result(graph: &CauseEffectGraph, outcome: &OptimizationOutcome) -> Value {
    let steps = outcome
        .steps
        .iter()
        .map(|s| {
            json::object(vec![
                (
                    "side",
                    Value::from(match s.plan.side {
                        BufferedSide::Lambda => "lambda",
                        BufferedSide::Nu => "nu",
                    }),
                ),
                ("capacity", Value::from(s.plan.capacity)),
                ("shift_ns", Value::Int(s.plan.shift.as_nanos())),
                ("bound_after_ns", Value::Int(s.bound_after_step.as_nanos())),
            ])
        })
        .collect();
    json::object(vec![
        (
            "task",
            Value::from(graph.task(outcome.final_report.task).name()),
        ),
        ("initial_bound_ns", Value::Int(outcome.initial_bound.as_nanos())),
        ("final_bound_ns", Value::Int(outcome.final_bound().as_nanos())),
        ("improvement_ns", Value::Int(outcome.improvement().as_nanos())),
        ("rounds", Value::from(outcome.steps.len())),
        ("steps", Value::Array(steps)),
    ])
}

fn ns_i64(v: i128) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Encodes a [`GlobalPlan`] as the `optimize` result payload.
///
/// Pure over its inputs: a direct [`disparity_opt`] run plus the
/// canonical hash of the plan-applied spec encodes to exactly the bytes
/// the server returns, which is how the loadgen replay mode verifies
/// responses end to end.
#[must_use]
pub fn encode_optimize_result(
    plan: &GlobalPlan,
    optimized_hash: u64,
    sim: Option<Value>,
) -> Value {
    let assignments = plan
        .assignments
        .iter()
        .map(|a| {
            json::object(vec![
                ("from", Value::from(a.from.as_str())),
                ("to", Value::from(a.to.as_str())),
                ("base_capacity", Value::from(a.base_capacity)),
                ("capacity", Value::from(a.capacity)),
            ])
        })
        .collect();
    let predictions = plan
        .predictions
        .iter()
        .map(|p| {
            let pairs = p
                .pairs
                .iter()
                .map(|d| {
                    json::object(vec![
                        ("lambda", Value::from(d.lambda)),
                        ("nu", Value::from(d.nu)),
                        ("analyzed_at", Value::from(d.analyzed_at.as_str())),
                        ("before_ns", Value::Int(d.before.as_nanos())),
                        ("after_ns", Value::Int(d.after.as_nanos())),
                    ])
                })
                .collect();
            json::object(vec![
                ("task", Value::from(p.task.as_str())),
                ("before_ns", Value::Int(p.before.as_nanos())),
                ("after_ns", Value::Int(p.after.as_nanos())),
                (
                    "target_ns",
                    p.target.map_or(Value::Null, |t| Value::Int(t.as_nanos())),
                ),
                ("met", p.met().map_or(Value::Null, Value::Bool)),
                ("pairs", Value::Array(pairs)),
            ])
        })
        .collect();
    json::object(vec![
        ("backend", Value::from(plan.backend)),
        ("slots_used", Value::from(plan.slots_used)),
        ("assignments", Value::Array(assignments)),
        ("predictions", Value::Array(predictions)),
        (
            "score",
            json::object(vec![
                ("target_excess_ns", ns_i64(plan.score.target_excess_ns)),
                ("total_bound_ns", ns_i64(plan.score.total_bound_ns)),
            ]),
        ),
        ("improvement_ns", ns_i64(plan.improvement_ns())),
        ("all_targets_met", Value::Bool(plan.all_targets_met())),
        (
            "stats",
            json::object(vec![
                ("candidates", Value::from(plan.stats.candidates)),
                ("nodes", ns_i64(i128::from(plan.stats.nodes))),
                ("pruned", ns_i64(i128::from(plan.stats.pruned))),
                ("delta_scored", ns_i64(i128::from(plan.stats.delta_scored))),
                ("cold_scored", ns_i64(i128::from(plan.stats.cold_scored))),
            ]),
        ),
        (
            "optimized_spec_hash",
            Value::from(format!("{optimized_hash:016x}")),
        ),
        ("sim", sim.unwrap_or(Value::Null)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_disparity_request() {
        let line = r#"{"id":"r1","op":"disparity","task":"fuse","spec":{"tasks":[{"name":"fuse","period":1000000}]}}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(req.id, Value::Str("r1".into()));
        assert_eq!(req.endpoint(), "disparity");
        match req.op {
            Op::Disparity {
                task,
                method,
                chain_limit,
                ..
            } => {
                assert_eq!(task, "fuse");
                assert_eq!(method, Method::ForkJoin);
                assert_eq!(chain_limit, DEFAULT_CHAIN_LIMIT);
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_the_id() {
        let err = Request::parse(r#"{"id":42,"op":"nope"}"#).unwrap_err();
        assert_eq!(err.id, Value::Int(42));
        assert!(err.to_string().contains("unknown op"));

        let err = Request::parse("not json").unwrap_err();
        assert_eq!(err.id, Value::Null);
    }

    #[test]
    fn parses_optimize_requests() {
        let line = r#"{"id":"o1","op":"optimize","base":"00000000deadbeef","budget_slots":3,"targets":[{"task":"fuse","bound_ns":5000000}],"backend":"beam","beam_width":4,"seed":9,"allow_overbuffering":true,"sim_horizon_ms":250}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(req.endpoint(), "optimize");
        match req.op {
            Op::Optimize {
                spec,
                base,
                budget_slots,
                targets,
                backend,
                seed,
                allow_overbuffering,
                chain_limit,
                sim_horizon_ms,
                ..
            } => {
                assert!(spec.is_none());
                assert_eq!(base, Some(0x0000_0000_dead_beef));
                assert_eq!(budget_slots, 3);
                assert_eq!(targets.len(), 1);
                assert_eq!(targets[0].task, "fuse");
                assert_eq!(targets[0].bound, Duration::from_nanos(5_000_000));
                assert_eq!(backend, BackendChoice::Beam { width: 4 });
                assert_eq!(seed, 9);
                assert!(allow_overbuffering);
                assert_eq!(chain_limit, DEFAULT_CHAIN_LIMIT);
                assert_eq!(sim_horizon_ms, Some(250));
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn optimize_requires_exactly_one_of_spec_and_base() {
        let neither = r#"{"id":1,"op":"optimize","budget_slots":2}"#;
        let err = Request::parse(neither).unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");

        let both = r#"{"id":1,"op":"optimize","budget_slots":2,"base":"ff","spec":{"tasks":[{"name":"a","period":1000000}]}}"#;
        let err = Request::parse(both).unwrap_err();
        assert!(err.to_string().contains("exactly one"), "{err}");

        let missing_budget = r#"{"id":1,"op":"optimize","base":"ff"}"#;
        let err = Request::parse(missing_budget).unwrap_err();
        assert!(err.to_string().contains("budget_slots"), "{err}");

        let bad_backend = r#"{"id":1,"op":"optimize","base":"ff","budget_slots":0,"backend":"genetic"}"#;
        let err = Request::parse(bad_backend).unwrap_err();
        assert!(err.to_string().contains("backend"), "{err}");
    }

    #[test]
    fn optimize_defaults() {
        let line = r#"{"id":1,"op":"optimize","base":"ff","budget_slots":0}"#;
        let req = Request::parse(line).unwrap();
        match req.op {
            Op::Optimize {
                budget_slots,
                targets,
                backend,
                seed,
                allow_overbuffering,
                sim_horizon_ms,
                ..
            } => {
                assert_eq!(budget_slots, 0, "zero budget is meaningful, not an error");
                assert!(targets.is_empty());
                assert_eq!(backend, BackendChoice::Auto);
                assert_eq!(seed, 0);
                assert!(!allow_overbuffering);
                assert_eq!(sim_horizon_ms, None);
            }
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn method_spellings() {
        for (text, want) in [
            ("independent", Method::Independent),
            ("pdiff", Method::Independent),
            ("fork_join", Method::ForkJoin),
            ("sdiff", Method::ForkJoin),
            ("combined", Method::Combined),
        ] {
            let got = parse_method(Some(&Value::from(text))).unwrap();
            assert_eq!(got, want, "{text}");
        }
        assert!(parse_method(Some(&Value::from("p_diff"))).is_err());
        assert_eq!(parse_method(None).unwrap(), Method::ForkJoin);
    }

    #[test]
    fn response_line_is_single_line_json() {
        let line = response_line(
            &Value::from("x\ny"),
            Status::Error,
            ResponseBody::Error("bad\tinput".into()),
        );
        assert!(!line.contains('\n'));
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("id").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_patch_requests() {
        let line = r#"{"id":7,"op":"patch","base":"00ff00ff00ff00ff","edits":[{"kind":"set_wcet","task":"fuse","wcet":2000000}],"task":"fuse","method":"pdiff","chain_limit":64}"#;
        let req = Request::parse(line).unwrap();
        assert_eq!(req.endpoint(), "patch");
        assert!(req.op.spec().is_none(), "patch carries no full spec");
        match &req.op {
            Op::Patch {
                base,
                edits,
                task,
                method,
                chain_limit,
            } => {
                assert_eq!(*base, 0x00ff_00ff_00ff_00ff);
                assert_eq!(edits.len(), 1);
                assert_eq!(edits[0].kind(), "set_wcet");
                assert_eq!(task, "fuse");
                assert_eq!(*method, Method::Independent);
                assert_eq!(*chain_limit, 64);
            }
            other => panic!("expected patch, got {other:?}"),
        }
    }

    #[test]
    fn patch_parse_errors_name_the_field() {
        let missing_base = r#"{"id":1,"op":"patch","edits":[],"task":"t"}"#;
        let err = Request::parse(missing_base).unwrap_err();
        assert!(err.to_string().contains("\"base\""), "{err}");
        let bad_base = r#"{"id":1,"op":"patch","base":"zz","edits":[],"task":"t"}"#;
        let err = Request::parse(bad_base).unwrap_err();
        assert!(err.to_string().contains("not a hex hash"), "{err}");
        let bad_edit =
            r#"{"id":1,"op":"patch","base":"0f","edits":[{"kind":"warp"}],"task":"t"}"#;
        let err = Request::parse(bad_edit).unwrap_err();
        assert!(err.to_string().contains("bad edit [0]"), "{err}");
    }

    #[test]
    fn prerendered_line_matches_response_line() {
        let result = json::object(vec![
            ("task", Value::from("fuse")),
            ("bound_ns", Value::Int(123)),
            ("critical", Value::Null),
        ]);
        for id in [Value::Int(42), Value::from("req \"x\"\n7"), Value::Null] {
            let via_value =
                response_line(&id, Status::Ok, ResponseBody::Result(result.clone()));
            let via_text = ok_line_prerendered(&id, &result.to_string());
            assert_eq!(via_value, via_text);
        }
    }

    #[test]
    fn parses_panic_and_health_ops() {
        let spec = r#"{"tasks":[{"name":"boom","period":1000000}]}"#;
        let req =
            Request::parse(&format!(r#"{{"id":1,"op":"panic","spec":{spec}}}"#)).unwrap();
        assert_eq!(req.endpoint(), "panic");
        match &req.op {
            Op::Panic { kind, spec } => {
                assert_eq!(*kind, PanicKind::Unwind);
                assert!(req.op.spec().is_some());
                assert_eq!(spec.canonical_hash(), req.op.spec().unwrap().canonical_hash());
            }
            other => panic!("wrong op: {other:?}"),
        }
        let req = Request::parse(&format!(
            r#"{{"id":1,"op":"panic","mode":"worker","spec":{spec}}}"#
        ))
        .unwrap();
        assert!(matches!(
            req.op,
            Op::Panic {
                kind: PanicKind::Worker,
                ..
            }
        ));
        assert!(Request::parse(
            &format!(r#"{{"id":1,"op":"panic","mode":"abort","spec":{spec}}}"#)
        )
        .is_err());
        assert!(Request::parse(r#"{"id":1,"op":"panic"}"#).is_err());

        let req = Request::parse(r#"{"id":2,"op":"health"}"#).unwrap();
        assert_eq!(req.op, Op::Health);
        assert!(req.op.spec().is_none());
    }

    #[test]
    fn internal_error_status_spelling() {
        assert_eq!(Status::InternalError.as_str(), "internal_error");
        let line = response_line(
            &Value::Int(9),
            Status::InternalError,
            ResponseBody::Error("panic while processing".into()),
        );
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("internal_error"));
    }

    #[test]
    fn parses_metrics_and_dump_ops() {
        let req = Request::parse(r#"{"id":1,"op":"metrics"}"#).unwrap();
        assert_eq!(req.op, Op::Metrics);
        assert_eq!(req.endpoint(), "metrics");
        assert!(req.op.spec().is_none());
        let req = Request::parse(r#"{"id":2,"op":"dump"}"#).unwrap();
        assert_eq!(req.op, Op::Dump);
        assert_eq!(req.endpoint(), "dump");
    }

    #[test]
    fn trace_id_round_trips_through_attach_and_split() {
        let trace = TraceId::new(3, 17);
        assert_eq!(trace.to_string(), "00000003-00000011");
        assert!(is_trace_id(&trace.to_string()));
        assert!(!is_trace_id("0000000300000011"));
        assert!(!is_trace_id("0000000G-00000011"));

        let line = response_line(&Value::Int(7), Status::Ok, ResponseBody::None);
        let stamped = attach_trace(&line, trace);
        assert!(stamped.ends_with(r#""trace_id":"00000003-00000011"}"#));
        let v = Value::parse(&stamped).unwrap();
        assert_eq!(v.get("trace_id").unwrap().as_str(), Some("00000003-00000011"));
        let (core, id) = split_trace(&stamped).unwrap();
        assert_eq!(core, line);
        assert_eq!(id, "00000003-00000011");
        assert!(split_trace(&line).is_none());
    }

    #[test]
    fn attach_trace_handles_error_and_refusal_lines() {
        for (status, body) in [
            (Status::Overloaded, ResponseBody::Error("queue full".into())),
            (Status::InternalError, ResponseBody::Error("panic".into())),
            (Status::Error, ResponseBody::Error("trace_id\":\"decoy".into())),
        ] {
            let line = response_line(&Value::Null, status, body);
            let stamped = attach_trace(&line, TraceId::new(1, 1));
            let v = Value::parse(&stamped).expect("stamped line stays valid JSON");
            assert_eq!(v.get("trace_id").unwrap().as_str(), Some("00000001-00000001"));
            let (core, _) = split_trace(&stamped).unwrap();
            assert_eq!(core, line, "split recovers the pure bytes");
        }
    }

    #[test]
    fn deadline_and_sleep_fields() {
        let req = Request::parse(r#"{"op":"sleep","millis":5,"deadline_ms":100}"#).unwrap();
        assert_eq!(req.deadline_ms, Some(100));
        assert_eq!(req.op, Op::Sleep { millis: 5 });
        let req = Request::parse(r#"{"op":"sleep"}"#).unwrap();
        assert_eq!(req.op, Op::Sleep { millis: 10 });
    }
}
