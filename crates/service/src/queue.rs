//! A bounded MPMC queue with explicit admission control.
//!
//! The service's intake: connection readers push, workers pop. The queue
//! never blocks a producer — [`BoundedQueue::try_push`] fails immediately
//! when full ([`PushError::Full`]) so the caller can answer `overloaded`
//! instead of silently holding the client. Batch-mode producers that *do*
//! want backpressure use [`BoundedQueue::push_blocking`].
//!
//! Closing the queue ([`BoundedQueue::close`]) starts the drain: pushes
//! fail with [`PushError::Closed`], pops keep returning queued items until
//! the queue is empty, then return `None`. Every accepted item is
//! therefore popped by exactly one consumer before the workers exit.
//!
//! Capacity-leak audit (robustness PR): a "permit" here is simply an
//! occupied `VecDeque` slot — there is no separate semaphore to leak. A
//! push either lands the item (slot freed by the worker's pop, even when
//! the submitting connection has since died: replies to a dead client go
//! to a closed channel and are dropped) or returns it to the caller in
//! the `Err` payload. A connection handler that dies *before* `try_push`
//! never touched the queue. The regression test lives in
//! `tests/server_hardening.rs::vanishing_clients_leak_no_queue_capacity`.

use disparity_conc::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::PoisonError;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity (admission control): answer `overloaded`.
    Full,
    /// The queue is closed (drain in progress): answer `shutting_down`.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. All methods are `&self`; share via `Arc`.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> core::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.lock();
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &s.items.len())
            .field("closed", &s.closed)
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` in-flight items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current queue depth (a gauge; racy by nature).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission limit.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` once [`close`](Self::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Non-blocking push: the admission-control path.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close). The item rides back in the error-free way
    /// (`Err` drops nothing the caller cannot reconstruct) — callers keep
    /// ownership by value of the rejected item.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.lock();
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space (batch mode wants backpressure, not
    /// drops).
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] when the queue closes before space frees up.
    pub fn push_blocking(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.lock();
        loop {
            if s.closed {
                return Err((item, PushError::Closed));
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self
                .not_full
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocking pop. Returns `None` only when the queue is closed *and*
    /// drained — every accepted item is handed to exactly one popper.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self
                .not_empty
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: no new items, queued items still drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Deliberately weakened copies of the queue's hot paths, compiled only
/// under the `model` feature. They are mutation probes for the in-tree
/// concurrency checker (`tests/conc_model.rs`): each drops exactly one
/// ordering/wakeup obligation the real code carries, and the checker must
/// catch each within the tier-1 schedule budget — proof the harness has
/// teeth, not just green runs.
#[cfg(feature = "model")]
pub mod probes {
    use super::*;

    /// Mutant: [`BoundedQueue::pop`] without the `not_full` notification —
    /// the "permit release" that unblocks a waiting `push_blocking`. A
    /// producer parked on a full queue then sleeps forever; the checker
    /// reports the lost wakeup as a deadlock.
    pub fn pop_missing_permit_release<T>(q: &BoundedQueue<T>) -> Option<T> {
        let mut s = q.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                // MUTANT: `q.not_full.notify_one()` dropped.
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = q
                .not_empty
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mutant: [`BoundedQueue::push_blocking`] without the `not_empty`
    /// notification. A consumer already parked in `pop` never learns the
    /// item arrived; the checker reports the deadlock.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] exactly like the real path.
    pub fn push_blocking_missing_notify<T>(
        q: &BoundedQueue<T>,
        item: T,
    ) -> Result<(), (T, PushError)> {
        let mut s = q.lock();
        loop {
            if s.closed {
                return Err((item, PushError::Closed));
            }
            if s.items.len() < q.capacity {
                s.items.push_back(item);
                // MUTANT: `q.not_empty.notify_one()` dropped.
                return Ok(());
            }
            s = q
                .not_full
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_enforces_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(("c", PushError::Closed)));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn every_item_pops_exactly_once_under_contention() {
        let q = Arc::new(BoundedQueue::new(8));
        let n_items = 200usize;
        let n_workers = 4;
        let popped: Vec<_> = std::thread::scope(|scope| {
            let poppers: Vec<_> = (0..n_workers)
                .map(|_| {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(v) = q.pop() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            for i in 0..n_items {
                q.push_blocking(i).unwrap();
            }
            q.close();
            poppers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut sorted = popped;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n_items).collect::<Vec<_>>());
    }

    #[test]
    fn push_blocking_wakes_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        std::thread::scope(|scope| {
            let q2 = Arc::clone(&q);
            let blocked = scope.spawn(move || q2.push_blocking(1));
            // Give the pusher a moment to block, then close underneath it.
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            assert_eq!(blocked.join().unwrap(), Err((1, PushError::Closed)));
        });
    }
}
