//! Sharded LRU cache of analyzed graphs, keyed by canonical content hash.
//!
//! Repeated requests against the same [`SystemSpec`] (modulo declaration
//! order) hit one cached [`GraphEntry`]: the built graph, its response
//! times, and the engine's shared [`HopCache`], so the Lemma 4/6 hop
//! bounds amortize across requests exactly as they do across tasks inside
//! one [`AnalysisEngine`] run.
//!
//! Keys are [`SystemSpec::canonical_hash`] values; each shard verifies
//! candidates against the stored canonical text, so a 64-bit collision
//! costs a miss, never a wrong graph.
//!
//! [`AnalysisEngine`]: disparity_core::engine::AnalysisEngine

use std::collections::HashMap;
use disparity_conc::sync::{Mutex, MutexGuard};
use std::sync::{Arc, PoisonError};

use disparity_core::engine::HopCache;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::{Canonical, SystemSpec};
use disparity_sched::wcrt::ResponseTimes;

/// Everything the service needs to answer queries about one spec.
#[derive(Debug)]
pub struct GraphEntry {
    /// The built cause-effect graph.
    pub graph: CauseEffectGraph,
    /// Response times under the paper's standing schedulability
    /// assumption (`R(τ) ≤ T(τ)` verified at insert).
    pub rt: ResponseTimes,
    /// Hop-bound cache shared by every engine built from this entry.
    pub hops: HopCache,
    /// The spec the entry was built from (`patch` applies edits to it).
    spec: SystemSpec,
    /// The spec's canonical rendering: text for collision verification,
    /// hash as the cache key.
    canonical: Canonical,
}

impl GraphEntry {
    /// Packs an analyzed graph for caching. Takes the canonical form
    /// pre-rendered so an insert path renders the spec exactly once (the
    /// same [`Canonical`] serves the key, the verification text, and this
    /// entry).
    #[must_use]
    pub fn new(
        canonical: Canonical,
        spec: SystemSpec,
        graph: CauseEffectGraph,
        rt: ResponseTimes,
    ) -> Self {
        GraphEntry {
            graph,
            rt,
            hops: HopCache::new(),
            spec,
            canonical,
        }
    }

    /// The spec this entry was built from.
    #[must_use]
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The spec's canonical text.
    #[must_use]
    pub fn canonical_text(&self) -> &str {
        &self.canonical.text
    }

    /// The cache key (`spec.canonical_hash()`).
    #[must_use]
    pub fn key(&self) -> u64 {
        self.canonical.hash
    }
}

/// Outcome of a by-hash lookup ([`ShardedCache::get_by_key`]), where no
/// canonical text is available to disambiguate 64-bit collisions.
#[derive(Debug)]
pub enum BaseLookup {
    /// No entry under the key.
    Miss,
    /// Exactly one entry under the key.
    Hit(Arc<GraphEntry>),
    /// Two or more specs collide on the key; answering any one of them
    /// would silently analyze the wrong system.
    Ambiguous,
}

struct Slot {
    entry: Arc<GraphEntry>,
    /// Monotonic recency stamp (shard-local).
    stamp: u64,
}

struct Shard {
    slots: HashMap<u64, Vec<Slot>>,
    clock: u64,
    len: usize,
}

impl Shard {
    /// Draws the next recency stamp.
    ///
    /// Invariant: stamps are **unique per shard**. The clock is strictly
    /// increasing and each `get`/`insert` assigns its drawn stamp to at
    /// most one slot. If the clock ever reaches `u64::MAX` (theoretical
    /// at any realistic request rate, but cheap to rule out), the live
    /// slots are renumbered compactly in recency order and the clock
    /// restarts above them — LRU order and uniqueness survive instead of
    /// wrapping to 0 and colliding with live stamps.
    fn next_stamp(&mut self) -> u64 {
        if self.clock == u64::MAX {
            let mut order: Vec<u64> = self.slots.values().flatten().map(|s| s.stamp).collect();
            order.sort_unstable();
            for slot in self.slots.values_mut().flatten() {
                let rank = match order.binary_search(&slot.stamp) {
                    Ok(r) | Err(r) => r,
                };
                slot.stamp = rank as u64;
            }
            self.clock = order.len() as u64;
        }
        self.clock += 1;
        self.clock
    }

    fn evict_lru(&mut self) {
        let oldest = self
            .slots
            .iter()
            .flat_map(|(&k, v)| v.iter().map(move |s| (s.stamp, k)))
            .min();
        if let Some((stamp, key)) = oldest {
            if let Some(bucket) = self.slots.get_mut(&key) {
                // Remove exactly the slot that carries the minimal stamp.
                // (A `retain` on stamp inequality would drop *every* slot
                // sharing the stamp while `len` decrements once — latent
                // desync guarded against even though `next_stamp` makes
                // duplicates impossible.)
                if let Some(at) = bucket.iter().position(|s| s.stamp == stamp) {
                    bucket.remove(at);
                    self.len -= 1;
                }
                if bucket.is_empty() {
                    self.slots.remove(&key);
                }
            }
        }
    }
}

/// The sharded cache. `get`/`insert` take one shard lock, never all.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl core::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .finish()
    }
}

const SHARDS: usize = 8;

impl ShardedCache {
    /// A cache holding at most `capacity` graphs (split over 8 shards,
    /// rounded up so the total is at least `capacity`, minimum 1/shard).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        slots: HashMap::new(),
                        clock: 0,
                        len: 0,
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
        }
    }

    fn shard(&self, key: u64) -> MutexGuard<'_, Shard> {
        let index = usize::try_from(key % (SHARDS as u64)).unwrap_or(0);
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Total cached graphs (racy gauge).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len)
            .sum()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the entry for `spec` under `key =
    /// spec.canonical_hash()`, verifying canonical text.
    #[must_use]
    pub fn get(&self, key: u64, canonical: &str) -> Option<Arc<GraphEntry>> {
        let mut shard = self.shard(key);
        let clock = shard.next_stamp();
        let bucket = shard.slots.get_mut(&key)?;
        let slot = bucket
            .iter_mut()
            .find(|s| s.entry.canonical.text == canonical)?;
        slot.stamp = clock;
        Some(Arc::clone(&slot.entry))
    }

    /// Looks up an entry by key alone — the `patch` base lookup, where
    /// the client names the base spec by its canonical hash and holds no
    /// text to verify against. A hit bumps recency like [`Self::get`]; a
    /// bucket holding several colliding specs answers
    /// [`BaseLookup::Ambiguous`] rather than guessing.
    #[must_use]
    pub fn get_by_key(&self, key: u64) -> BaseLookup {
        let mut shard = self.shard(key);
        let clock = shard.next_stamp();
        let Some(bucket) = shard.slots.get_mut(&key) else {
            return BaseLookup::Miss;
        };
        match bucket.as_mut_slice() {
            [] => BaseLookup::Miss,
            [slot] => {
                slot.stamp = clock;
                BaseLookup::Hit(Arc::clone(&slot.entry))
            }
            _ => BaseLookup::Ambiguous,
        }
    }

    /// Inserts `entry` under `key`, evicting the shard's least-recently
    /// used graph at capacity. Returns the entry that is now cached —
    /// the given one, or an equivalent entry another thread raced in
    /// first (so concurrent identical requests converge on one
    /// `HopCache`).
    pub fn insert(&self, key: u64, entry: GraphEntry) -> Arc<GraphEntry> {
        let mut shard = self.shard(key);
        let clock = shard.next_stamp();
        if let Some(bucket) = shard.slots.get_mut(&key) {
            if let Some(slot) = bucket
                .iter_mut()
                .find(|s| s.entry.canonical.text == entry.canonical.text)
            {
                slot.stamp = clock;
                return Arc::clone(&slot.entry);
            }
        }
        while shard.len >= self.per_shard_capacity {
            shard.evict_lru();
        }
        let stamp = clock;
        let entry = Arc::new(entry);
        shard.slots.entry(key).or_default().push(Slot {
            entry: Arc::clone(&entry),
            stamp,
        });
        shard.len += 1;
        entry
    }
}

/// Model-checker instrumentation: invariant audit and clock control,
/// compiled only under the `model` feature so the normal build's surface
/// is untouched. Used by `tests/conc_model.rs`.
#[cfg(feature = "model")]
impl ShardedCache {
    /// Checks every shard's bookkeeping invariants and returns the first
    /// violation as text: `len` equals the live slot count, recency
    /// stamps are unique, and no bucket holds two slots for the same
    /// canonical text (the "one `HopCache` per spec" contract).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invariant breach.
    pub fn debug_audit(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            let live: usize = shard.slots.values().map(Vec::len).sum();
            if shard.len != live {
                return Err(format!(
                    "shard {i}: len counter {} but {live} live slots",
                    shard.len
                ));
            }
            let mut stamps: Vec<u64> = shard.slots.values().flatten().map(|s| s.stamp).collect();
            stamps.sort_unstable();
            if stamps.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!("shard {i}: duplicate recency stamp"));
            }
            for bucket in shard.slots.values() {
                for (a, slot) in bucket.iter().enumerate() {
                    if bucket[a + 1..]
                        .iter()
                        .any(|other| other.entry.canonical.text == slot.entry.canonical.text)
                    {
                        return Err(format!("shard {i}: duplicate canonical text in bucket"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Forces the recency clock of `key`'s shard — lets the harness start
    /// an execution at `u64::MAX` so the renumbering path in
    /// `Shard::next_stamp` runs under concurrency instead of being
    /// theoretical.
    pub fn debug_set_clock(&self, key: u64, clock: u64) {
        self.shard(key).clock = clock;
    }
}

/// Deliberately weakened copies of the insert/eviction path, compiled
/// only under the `model` feature. Mutation probes for the in-tree
/// concurrency checker (`tests/conc_model.rs`): each resurrects a
/// bookkeeping bug the real code guards against, and the checker must
/// catch each via [`ShardedCache::debug_audit`] within the tier-1
/// schedule budget.
#[cfg(feature = "model")]
pub mod probes {
    use super::*;

    /// Mutant: eviction decrements `len` twice per removed slot. With two
    /// or more live slots at eviction time the counter drifts below the
    /// live count and capacity enforcement silently degrades.
    pub fn insert_double_decrement_eviction(
        cache: &ShardedCache,
        key: u64,
        entry: GraphEntry,
    ) -> Arc<GraphEntry> {
        let mut shard = cache.shard(key);
        // Deref once so field borrows split (`slots` vs `len`).
        let shard = &mut *shard;
        let clock = shard.next_stamp();
        if let Some(bucket) = shard.slots.get_mut(&key) {
            if let Some(slot) = bucket
                .iter_mut()
                .find(|s| s.entry.canonical.text == entry.canonical.text)
            {
                slot.stamp = clock;
                return Arc::clone(&slot.entry);
            }
        }
        while shard.len >= cache.per_shard_capacity {
            let oldest = shard
                .slots
                .iter()
                .flat_map(|(&k, v)| v.iter().map(move |s| (s.stamp, k)))
                .min();
            let Some((stamp, victim)) = oldest else { break };
            if let Some(bucket) = shard.slots.get_mut(&victim) {
                if let Some(at) = bucket.iter().position(|s| s.stamp == stamp) {
                    bucket.remove(at);
                    // MUTANT: `len` decremented twice for one removed slot.
                    shard.len = shard.len.saturating_sub(2);
                }
                if bucket.is_empty() {
                    shard.slots.remove(&victim);
                }
            }
        }
        let entry = Arc::new(entry);
        shard.slots.entry(key).or_default().push(Slot {
            entry: Arc::clone(&entry),
            stamp: clock,
        });
        shard.len += 1;
        entry
    }

    /// Mutant: the historical retain-based eviction, paired with a stale
    /// clock read so slots inserted through this path share recency
    /// stamps. `retain` then drops *every* slot carrying the victim stamp
    /// while `len` decrements once — exactly the desync the comment in
    /// `Shard::evict_lru` warns about.
    pub fn insert_retain_eviction(
        cache: &ShardedCache,
        key: u64,
        entry: GraphEntry,
    ) -> Arc<GraphEntry> {
        let mut shard = cache.shard(key);
        // Deref once so field borrows split (`slots` vs `len`).
        let shard = &mut *shard;
        // MUTANT: reuses the current clock instead of drawing a fresh
        // stamp, so repeated probe inserts collide on one stamp.
        let clock = shard.clock;
        if let Some(bucket) = shard.slots.get_mut(&key) {
            if let Some(slot) = bucket
                .iter_mut()
                .find(|s| s.entry.canonical.text == entry.canonical.text)
            {
                slot.stamp = clock;
                return Arc::clone(&slot.entry);
            }
        }
        while shard.len >= cache.per_shard_capacity {
            let oldest = shard
                .slots
                .iter()
                .flat_map(|(&k, v)| v.iter().map(move |s| (s.stamp, k)))
                .min();
            let Some((stamp, victim)) = oldest else { break };
            if let Some(bucket) = shard.slots.get_mut(&victim) {
                let before = bucket.len();
                // MUTANT: drops every slot sharing the victim stamp.
                bucket.retain(|s| s.stamp != stamp);
                if bucket.len() < before {
                    shard.len -= 1;
                }
                if bucket.is_empty() {
                    shard.slots.remove(&victim);
                }
            }
        }
        let entry = Arc::new(entry);
        shard.slots.entry(key).or_default().push(Slot {
            entry: Arc::clone(&entry),
            stamp: clock,
        });
        shard.len += 1;
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_model::time::Duration;
    use disparity_sched::wcrt::response_times;

    fn spec_with_period(ms: i64) -> (SystemSpec, GraphEntry) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", Duration::from_millis(ms)));
        let t = b.add_task(
            TaskSpec::periodic("t", Duration::from_millis(ms))
                .execution(Duration::from_millis(1), Duration::from_millis(2))
                .on_ecu(e),
        );
        b.connect(s, t);
        let graph = b.build().unwrap();
        let rt = response_times(&graph).unwrap();
        let spec = SystemSpec::from_graph(&graph);
        let entry = GraphEntry::new(spec.canonical(), spec.clone(), graph, rt);
        (spec, entry)
    }

    #[test]
    fn hit_after_insert_shares_the_entry() {
        let cache = ShardedCache::new(16);
        let (spec, entry) = spec_with_period(10);
        let key = spec.canonical_hash();
        let canonical = spec.canonical_text();
        assert!(cache.get(key, &canonical).is_none());
        let inserted = cache.insert(key, entry);
        let hit = cache.get(key, &canonical).unwrap();
        assert!(Arc::ptr_eq(&inserted, &hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_inserts_converge_on_one_entry() {
        let cache = ShardedCache::new(16);
        let (spec, a) = spec_with_period(10);
        let (_, b) = spec_with_period(10);
        let key = spec.canonical_hash();
        let first = cache.insert(key, a);
        let second = cache.insert(key, b);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // One graph per shard max: total capacity 8 (SHARDS shards).
        let cache = ShardedCache::new(1);
        let (spec_a, a) = spec_with_period(10);
        let key_a = spec_a.canonical_hash();
        // Find a second spec landing on the same shard as the first.
        let mut other = None;
        for ms in 11..200 {
            let (s, e) = spec_with_period(ms);
            if s.canonical_hash() % 8 == key_a % 8 {
                other = Some((s, e));
                break;
            }
        }
        let (spec_b, b) = other.expect("some period collides on the shard");
        cache.insert(key_a, a);
        cache.insert(spec_b.canonical_hash(), b);
        // Shard capacity 1: inserting B evicted A.
        assert!(cache.get(key_a, &spec_a.canonical_text()).is_none());
        assert!(cache
            .get(spec_b.canonical_hash(), &spec_b.canonical_text())
            .is_some());
    }

    #[test]
    fn entry_exposes_spec_and_canonical() {
        let (spec, entry) = spec_with_period(10);
        assert_eq!(entry.key(), spec.canonical_hash());
        assert_eq!(entry.canonical_text(), spec.canonical_text());
        assert_eq!(entry.spec(), &spec);
    }

    #[test]
    fn eviction_in_a_collision_bucket_removes_exactly_one_slot() {
        // Regression: `evict_lru` used `retain(|s| s.stamp != stamp)` on
        // the victim bucket while decrementing `len` once. Drive one
        // shard to capacity through a forced-collision bucket and check
        // the bookkeeping survives repeated evictions.
        let cache = ShardedCache::new(16); // 2 per shard
        let key = 5;
        let (spec_a, a) = spec_with_period(10);
        let (spec_b, b) = spec_with_period(20);
        let (spec_c, c) = spec_with_period(30);
        cache.insert(key, a);
        cache.insert(key, b);
        assert_eq!(cache.len(), 2);
        // At capacity: the third insert evicts exactly the oldest slot.
        cache.insert(key, c);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(key, &spec_a.canonical_text()).is_none());
        assert!(cache.get(key, &spec_b.canonical_text()).is_some());
        assert!(cache.get(key, &spec_c.canonical_text()).is_some());
        // Refill and evict again: `len` still tracks the live slots.
        let (spec_d, d) = spec_with_period(40);
        cache.insert(key, d);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(key, &spec_b.canonical_text()).is_none());
        assert!(cache.get(key, &spec_c.canonical_text()).is_some());
        assert!(cache.get(key, &spec_d.canonical_text()).is_some());
    }

    #[test]
    fn stamps_stay_unique_across_clock_wraparound() {
        // Invariant under test: recency stamps are unique per shard, even
        // across u64 clock exhaustion (`Shard::next_stamp` renumbers the
        // live slots compactly instead of wrapping onto them).
        let cache = ShardedCache::new(32); // 4 per shard
        let shard_index = 2;
        {
            let mut shard = cache.shards[shard_index]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            shard.clock = u64::MAX - 2;
        }
        // Four keys landing on shard 2 (key % 8 == 2), distinct buckets;
        // the inserts walk the clock across u64::MAX.
        let specs: Vec<_> = [10, 20, 30, 40]
            .iter()
            .enumerate()
            .map(|(i, &ms)| {
                let (spec, entry) = spec_with_period(ms);
                let key = 2 + 8 * (i as u64);
                cache.insert(key, entry);
                (key, spec)
            })
            .collect();
        let shard = cache.shards[shard_index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let mut stamps: Vec<u64> = shard.slots.values().flatten().map(|s| s.stamp).collect();
        assert_eq!(stamps.len(), 4);
        let total = stamps.len();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), total, "duplicate stamps after wraparound");
        assert!(shard.clock < u64::MAX);
        drop(shard);
        // LRU order survives the renumbering: at capacity, the oldest of
        // the four is the one evicted next.
        let (_, extra) = spec_with_period(50);
        cache.insert(2 + 8 * 4, extra);
        assert!(cache.get(specs[0].0, &specs[0].1.canonical_text()).is_none());
        for (key, spec) in &specs[1..] {
            assert!(cache.get(*key, &spec.canonical_text()).is_some());
        }
    }

    #[test]
    fn get_by_key_hits_misses_and_flags_collisions() {
        let cache = ShardedCache::new(16);
        let (spec, entry) = spec_with_period(10);
        let key = spec.canonical_hash();
        assert!(matches!(cache.get_by_key(key), BaseLookup::Miss));
        let inserted = cache.insert(key, entry);
        match cache.get_by_key(key) {
            BaseLookup::Hit(hit) => assert!(Arc::ptr_eq(&hit, &inserted)),
            other => panic!("expected hit, got {other:?}"),
        }
        // A second spec colliding on the same key makes it ambiguous.
        let (_, other) = spec_with_period(20);
        cache.insert(key, other);
        assert!(matches!(cache.get_by_key(key), BaseLookup::Ambiguous));
    }

    #[test]
    fn get_by_key_bumps_recency() {
        let cache = ShardedCache::new(16); // 2 per shard
        let key_a = 5;
        let key_b = 13; // same shard (5 % 8 == 13 % 8)
        let (spec_a, a) = spec_with_period(10);
        let (spec_b, b) = spec_with_period(20);
        cache.insert(key_a, a);
        cache.insert(key_b, b);
        // Touch A by key, then insert a third entry: B is now the LRU.
        assert!(matches!(cache.get_by_key(key_a), BaseLookup::Hit(_)));
        let (_, c) = spec_with_period(30);
        cache.insert(21, c); // also shard 5
        assert!(cache.get(key_a, &spec_a.canonical_text()).is_some());
        assert!(cache.get(key_b, &spec_b.canonical_text()).is_none());
    }

    #[test]
    fn colliding_keys_with_different_text_both_live() {
        let cache = ShardedCache::new(16);
        let (spec_a, a) = spec_with_period(10);
        let (spec_b, b) = spec_with_period(20);
        // Force both under one key: a synthetic collision.
        let key = 42;
        cache.insert(key, a);
        cache.insert(key, b);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(key, &spec_a.canonical_text()).is_some());
        assert!(cache.get(key, &spec_b.canonical_text()).is_some());
        assert!(cache.get(key, "something else").is_none());
    }
}
