//! Sharded LRU cache of analyzed graphs, keyed by canonical content hash.
//!
//! Repeated requests against the same [`SystemSpec`] (modulo declaration
//! order) hit one cached [`GraphEntry`]: the built graph, its response
//! times, and the engine's shared [`HopCache`], so the Lemma 4/6 hop
//! bounds amortize across requests exactly as they do across tasks inside
//! one [`AnalysisEngine`] run.
//!
//! Keys are [`SystemSpec::canonical_hash`] values; each shard verifies
//! candidates against the stored canonical text, so a 64-bit collision
//! costs a miss, never a wrong graph.
//!
//! [`AnalysisEngine`]: disparity_core::engine::AnalysisEngine

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use disparity_core::engine::HopCache;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::spec::SystemSpec;
use disparity_sched::wcrt::ResponseTimes;

/// Everything the service needs to answer queries about one spec.
#[derive(Debug)]
pub struct GraphEntry {
    /// The built cause-effect graph.
    pub graph: CauseEffectGraph,
    /// Response times under the paper's standing schedulability
    /// assumption (`R(τ) ≤ T(τ)` verified at insert).
    pub rt: ResponseTimes,
    /// Hop-bound cache shared by every engine built from this entry.
    pub hops: HopCache,
    /// The spec's canonical text (collision verification).
    canonical: String,
}

impl GraphEntry {
    /// Packs an analyzed graph for caching.
    #[must_use]
    pub fn new(spec: &SystemSpec, graph: CauseEffectGraph, rt: ResponseTimes) -> Self {
        GraphEntry {
            graph,
            rt,
            hops: HopCache::new(),
            canonical: spec.canonical_text(),
        }
    }
}

struct Slot {
    entry: Arc<GraphEntry>,
    /// Monotonic recency stamp (shard-local).
    stamp: u64,
}

struct Shard {
    slots: HashMap<u64, Vec<Slot>>,
    clock: u64,
    len: usize,
}

impl Shard {
    fn evict_lru(&mut self) {
        let oldest = self
            .slots
            .iter()
            .flat_map(|(&k, v)| v.iter().map(move |s| (s.stamp, k)))
            .min();
        if let Some((stamp, key)) = oldest {
            if let Some(bucket) = self.slots.get_mut(&key) {
                bucket.retain(|s| s.stamp != stamp);
                if bucket.is_empty() {
                    self.slots.remove(&key);
                }
                self.len -= 1;
            }
        }
    }
}

/// The sharded cache. `get`/`insert` take one shard lock, never all.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl core::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &self.len())
            .finish()
    }
}

const SHARDS: usize = 8;

impl ShardedCache {
    /// A cache holding at most `capacity` graphs (split over 8 shards,
    /// rounded up so the total is at least `capacity`, minimum 1/shard).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ShardedCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        slots: HashMap::new(),
                        clock: 0,
                        len: 0,
                    })
                })
                .collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
        }
    }

    fn shard(&self, key: u64) -> MutexGuard<'_, Shard> {
        let index = usize::try_from(key % (SHARDS as u64)).unwrap_or(0);
        self.shards[index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Total cached graphs (racy gauge).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len)
            .sum()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the entry for `spec` under `key =
    /// spec.canonical_hash()`, verifying canonical text.
    #[must_use]
    pub fn get(&self, key: u64, canonical: &str) -> Option<Arc<GraphEntry>> {
        let mut shard = self.shard(key);
        shard.clock += 1;
        let clock = shard.clock;
        let bucket = shard.slots.get_mut(&key)?;
        let slot = bucket.iter_mut().find(|s| s.entry.canonical == canonical)?;
        slot.stamp = clock;
        Some(Arc::clone(&slot.entry))
    }

    /// Inserts `entry` under `key`, evicting the shard's least-recently
    /// used graph at capacity. Returns the entry that is now cached —
    /// the given one, or an equivalent entry another thread raced in
    /// first (so concurrent identical requests converge on one
    /// `HopCache`).
    pub fn insert(&self, key: u64, entry: GraphEntry) -> Arc<GraphEntry> {
        let mut shard = self.shard(key);
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(bucket) = shard.slots.get_mut(&key) {
            if let Some(slot) = bucket
                .iter_mut()
                .find(|s| s.entry.canonical == entry.canonical)
            {
                slot.stamp = clock;
                return Arc::clone(&slot.entry);
            }
        }
        while shard.len >= self.per_shard_capacity {
            shard.evict_lru();
        }
        let stamp = clock;
        let entry = Arc::new(entry);
        shard.slots.entry(key).or_default().push(Slot {
            entry: Arc::clone(&entry),
            stamp,
        });
        shard.len += 1;
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;
    use disparity_model::time::Duration;
    use disparity_sched::wcrt::response_times;

    fn spec_with_period(ms: i64) -> (SystemSpec, GraphEntry) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", Duration::from_millis(ms)));
        let t = b.add_task(
            TaskSpec::periodic("t", Duration::from_millis(ms))
                .execution(Duration::from_millis(1), Duration::from_millis(2))
                .on_ecu(e),
        );
        b.connect(s, t);
        let graph = b.build().unwrap();
        let rt = response_times(&graph).unwrap();
        let spec = SystemSpec::from_graph(&graph);
        let entry = GraphEntry::new(&spec, graph, rt);
        (spec, entry)
    }

    #[test]
    fn hit_after_insert_shares_the_entry() {
        let cache = ShardedCache::new(16);
        let (spec, entry) = spec_with_period(10);
        let key = spec.canonical_hash();
        let canonical = spec.canonical_text();
        assert!(cache.get(key, &canonical).is_none());
        let inserted = cache.insert(key, entry);
        let hit = cache.get(key, &canonical).unwrap();
        assert!(Arc::ptr_eq(&inserted, &hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn racing_inserts_converge_on_one_entry() {
        let cache = ShardedCache::new(16);
        let (spec, a) = spec_with_period(10);
        let (_, b) = spec_with_period(10);
        let key = spec.canonical_hash();
        let first = cache.insert(key, a);
        let second = cache.insert(key, b);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        // One graph per shard max: total capacity 8 (SHARDS shards).
        let cache = ShardedCache::new(1);
        let (spec_a, a) = spec_with_period(10);
        let key_a = spec_a.canonical_hash();
        // Find a second spec landing on the same shard as the first.
        let mut other = None;
        for ms in 11..200 {
            let (s, e) = spec_with_period(ms);
            if s.canonical_hash() % 8 == key_a % 8 {
                other = Some((s, e));
                break;
            }
        }
        let (spec_b, b) = other.expect("some period collides on the shard");
        cache.insert(key_a, a);
        cache.insert(spec_b.canonical_hash(), b);
        // Shard capacity 1: inserting B evicted A.
        assert!(cache.get(key_a, &spec_a.canonical_text()).is_none());
        assert!(cache
            .get(spec_b.canonical_hash(), &spec_b.canonical_text())
            .is_some());
    }

    #[test]
    fn colliding_keys_with_different_text_both_live() {
        let cache = ShardedCache::new(16);
        let (spec_a, a) = spec_with_period(10);
        let (spec_b, b) = spec_with_period(20);
        // Force both under one key: a synthetic collision.
        let key = 42;
        cache.insert(key, a);
        cache.insert(key, b);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(key, &spec_a.canonical_text()).is_some());
        assert!(cache.get(key, &spec_b.canonical_text()).is_some());
        assert!(cache.get(key, "something else").is_none());
    }
}
