//! A long-running analysis server for worst-case time disparity queries.
//!
//! The one-shot CLIs rebuild the memoized [`AnalysisEngine`] per process;
//! this crate serves it: a daemon answering P-diff/S-diff
//! ([`Op::Disparity`]), WCBT/BCBT ([`Op::Backward`]), Algorithm 1
//! buffer sizing ([`Op::Buffer`]), and incremental re-analysis of a
//! cached spec under typed edits ([`Op::Patch`]) over newline-delimited
//! JSON, on TCP and on stdin (batch mode). Zero external dependencies,
//! matching the workspace's offline-build rule.
//!
//! * [`proto`] — the request/response schema and the deterministic result
//!   encoders (server responses are byte-identical to encoding a direct
//!   engine run);
//! * [`queue`] — bounded MPMC intake with explicit admission control
//!   (queue-full answers `overloaded` immediately, never blocks a client);
//! * [`cache`] — sharded LRU of analyzed graphs keyed by
//!   [`SystemSpec::canonical_hash`], so repeated queries against one spec
//!   share a graph, its response times, and the engine's hop-bound cache;
//! * [`service`] — the worker pool, soft deadlines via the engine's
//!   budget hook, optional diag gating, stats;
//! * [`server`] — the TCP listener and the stdin batch runner, with a
//!   graceful drain that answers every accepted request.
//!
//! # Live telemetry
//!
//! Every response line carries a trailing `trace_id` (connection id +
//! request sequence, stamped by the transport via
//! [`proto::attach_trace`] so the body bytes stay identical to a direct
//! engine run). The same id is installed as the worker's span context
//! ([`disparity_obs::trace_scope`]) and tagged onto the always-on flight
//! recorder's lifecycle events ([`disparity_obs::flight`]), which are
//! dumped as NDJSON postmortems on panics, quarantines, or the `dump`
//! op. Sliding-window latency percentiles and a Prometheus-style text
//! exposition are served by the `metrics` op.
//!
//! # Examples
//!
//! ```
//! use std::sync::mpsc::channel;
//! use disparity_service::prelude::*;
//!
//! let service = Service::start(ServiceConfig::default());
//! let (tx, rx) = channel();
//! let request = Request::parse(r#"{"id":1,"op":"ping"}"#)?;
//! assert!(service.submit(request, 1, TraceId::new(0, 1), &tx));
//! let reply = rx.recv()?;
//! assert!(reply.line.contains("\"pong\":true"));
//! assert!(reply.line.contains("\"trace_id\":\"00000000-00000001\""));
//! service.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`AnalysisEngine`]: disparity_core::engine::AnalysisEngine
//! [`Op::Disparity`]: crate::proto::Op::Disparity
//! [`Op::Backward`]: crate::proto::Op::Backward
//! [`Op::Buffer`]: crate::proto::Op::Buffer
//! [`Op::Patch`]: crate::proto::Op::Patch
//! [`SystemSpec::canonical_hash`]: disparity_model::spec::SystemSpec::canonical_hash

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod proto;
pub mod queue;
pub mod server;
pub mod service;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::cache::{BaseLookup, GraphEntry, ShardedCache};
    pub use crate::proto::{Op, Request, Status, TraceId};
    pub use crate::queue::{BoundedQueue, PushError};
    pub use crate::server::{run_batch, serve, serve_with, ServeOptions, ServerHandle};
    pub use crate::service::{Reply, Service, ServiceConfig};
}
