//! `serve` — the disparity analysis daemon.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!       [--engine-workers N] [--diag-gate] [--stdin]
//!       [--max-request-bytes N] [--read-deadline-ms N]
//!       [--obs] [--trace-out FILE] [--metrics-out FILE]
//!       [--metrics-interval-ms N] [--postmortem-dir DIR]
//! ```
//!
//! Default mode listens on `--addr` (default `127.0.0.1:7414`, port 0
//! picks an ephemeral port, printed on stdout as `listening on ...`) and
//! serves until a client sends `{"op":"shutdown"}`. With `--stdin` the
//! daemon instead answers every request on standard input and exits
//! (batch mode; responses come back in input order).
//!
//! `--obs` enables the in-process recorder; on shutdown the trace and
//! metrics report are flushed to `--trace-out` / `--metrics-out`.
//!
//! `--metrics-interval-ms` turns on the sliding-window latency view
//! served by the `metrics` op (the window advances one interval per
//! tick); `--postmortem-dir` makes panics, quarantines, and `dump` ops
//! write flight-recorder NDJSON postmortems into the directory.

use std::io::Write;
use std::process::ExitCode;
use std::sync::mpsc::channel;
use std::sync::Arc;

use disparity_service::server::{run_batch, serve_with, ServeOptions};
use disparity_service::service::{Service, ServiceConfig};

struct Args {
    addr: String,
    stdin_mode: bool,
    obs: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    config: ServiceConfig,
    options: ServeOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7414".to_string(),
        stdin_mode: false,
        obs: false,
        trace_out: None,
        metrics_out: None,
        config: ServiceConfig::default(),
        options: ServeOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue" => {
                args.config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?;
            }
            "--cache" => {
                args.config.cache_capacity = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
            }
            "--engine-workers" => {
                args.config.engine_workers = value("--engine-workers")?
                    .parse()
                    .map_err(|e| format!("--engine-workers: {e}"))?;
            }
            "--max-request-bytes" => {
                args.options.max_request_bytes = value("--max-request-bytes")?
                    .parse()
                    .map_err(|e| format!("--max-request-bytes: {e}"))?;
            }
            "--read-deadline-ms" => {
                let ms: u64 = value("--read-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--read-deadline-ms: {e}"))?;
                // 0 disables the deadline (trusted clients, debugging).
                args.options.read_deadline =
                    (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--metrics-interval-ms" => {
                let ms: u64 = value("--metrics-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--metrics-interval-ms: {e}"))?;
                // 0 disables the window rotator (cumulative stats only).
                args.config.metrics_interval =
                    (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--postmortem-dir" => {
                args.config.postmortem_dir =
                    Some(std::path::PathBuf::from(value("--postmortem-dir")?));
            }
            "--diag-gate" => args.config.diag_gate = true,
            "--stdin" => args.stdin_mode = true,
            "--obs" => args.obs = true,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--help" | "-h" => {
                return Err("usage: serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--cache N] [--engine-workers N] [--diag-gate] [--stdin] \
                     [--max-request-bytes N] [--read-deadline-ms N (0 disables)] \
                     [--obs] [--trace-out FILE] [--metrics-out FILE] \
                     [--metrics-interval-ms N (0 disables)] [--postmortem-dir DIR]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn flush_obs(args: &Args) {
    if !args.obs {
        return;
    }
    if let Some(path) = &args.trace_out {
        if let Err(e) = disparity_obs::export::write_chrome_trace(std::path::Path::new(path)) {
            eprintln!("serve: writing {path}: {e}");
        }
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = disparity_obs::export::write_metrics_report(std::path::Path::new(path)) {
            eprintln!("serve: writing {path}: {e}");
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.obs {
        disparity_obs::enable();
    }

    let service = Service::start(args.config.clone());

    let code = if args.stdin_mode {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let result = run_batch(&service, &mut stdin.lock(), &mut stdout.lock());
        service.shutdown();
        match result {
            Ok(n) => {
                eprintln!("serve: answered {n} request(s) from stdin");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve: batch I/O error: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let handle = match serve_with(&args.addr, Arc::clone(&service), args.options.clone()) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("serve: cannot bind {}: {e}", args.addr);
                return ExitCode::FAILURE;
            }
        };
        println!("listening on {}", handle.addr());
        let _ = std::io::stdout().flush();
        // Park until a client sends the shutdown op; the worker hook
        // signals this channel and the main thread runs the drain.
        let (tx, rx) = channel::<()>();
        service.set_shutdown_hook(move || {
            let _ = tx.send(());
        });
        let _ = rx.recv();
        handle.shutdown();
        eprintln!("serve: drained and stopped");
        ExitCode::SUCCESS
    };

    flush_obs(&args);
    code
}
