//! The analysis service: a fixed worker pool over the bounded intake
//! queue, the content-addressed graph cache, and per-request processing.
//!
//! [`Service`] is transport-agnostic: the TCP server and the stdin batch
//! runner both feed it [`Job`]s via [`Service::submit`] (admission
//! control) or [`Service::submit_blocking`] (backpressure). Every accepted
//! job produces exactly one [`Reply`] on its channel; refused jobs are
//! answered inline by `submit` itself, so no request line is ever dropped
//! silently.
//!
//! # Panic isolation, supervision, quarantine
//!
//! A panic while processing a request must not take a worker (or the
//! fleet) down. Three layers enforce that:
//!
//! 1. every request runs inside [`Service::process_isolated`]'s
//!    `catch_unwind` boundary — a panic becomes a structured
//!    `internal_error` response carrying the spec's `canonical_hash` and
//!    the panic payload, and the worker keeps serving;
//! 2. a supervisor thread respawns any worker that dies anyway (a panic
//!    that escapes the boundary), counted in `worker_respawns`;
//! 3. a spec whose requests have panicked [`QUARANTINE_AFTER`] times is
//!    quarantined by hash: further requests carrying it are answered
//!    `rejected` immediately, so one poisonous spec cannot grind the pool
//!    down while healthy traffic flows.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use disparity_analyzer::checks::{analyze_spec, DiagConfig};
use disparity_core::buffering::optimize_task;
use disparity_core::delta::{AnalyzedSystem, DeltaBasis};
use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_core::error::AnalysisError;
use disparity_core::pairwise::Method;
use disparity_model::chain::Chain;
use disparity_model::edit::{apply_all, SpecEdit};
use disparity_model::json::{self, Value};
use disparity_model::spec::{hash_canonical_text, Canonical, SystemSpec};
use disparity_obs::flight::{self, EventKind};
use disparity_obs::{Histogram, WindowedHistogram};
use disparity_opt::{optimize_analyzed, BufferBudget, GlobalPlan, OptError, PlanRequest};
use disparity_sched::schedulability::analyze;
use disparity_sim::engine::{CommunicationSemantics, SimConfig, Simulator};
use disparity_sim::exec::ExecutionTimeModel;
use disparity_sim::fault::FaultPlan;

use crate::cache::{BaseLookup, GraphEntry, ShardedCache};
use crate::proto::{
    attach_trace, encode_backward_result, encode_buffer_result, encode_disparity_result,
    encode_optimize_result, method_str, ok_line_prerendered, response_line, Op, PanicKind,
    ProtoError, Request, ResponseBody, Status, TraceId,
};
use crate::queue::{BoundedQueue, PushError};

/// Tuning knobs for [`Service::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Intake queue capacity (admission limit).
    pub queue_capacity: usize,
    /// Graph cache capacity (number of analyzed specs kept).
    pub cache_capacity: usize,
    /// Reject specs carrying D-level diagnostics
    /// (via [`disparity_analyzer::checks::analyze_spec`]).
    pub diag_gate: bool,
    /// Worker threads *inside* each analysis engine. Keep at 1 unless the
    /// service runs fewer workers than cores; the engine's reduction is
    /// byte-identical for any value.
    pub engine_workers: usize,
    /// Rotation period of the sliding latency windows. `Some` spawns a
    /// rotation thread in [`Service::start`]; `None` leaves the windows
    /// frozen on their first interval (rotate manually via
    /// [`Service::rotate_windows`], as tests do).
    pub metrics_interval: Option<Duration>,
    /// Interval buckets per sliding window (the live view spans roughly
    /// `window_intervals x metrics_interval` of trailing time).
    pub window_intervals: usize,
    /// Where flight-recorder postmortems are written on a panic, a
    /// quarantine, or the `dump` op. `None` disables dump files (the
    /// in-memory journals still record).
    pub postmortem_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 32,
            diag_gate: false,
            engine_workers: 1,
            metrics_interval: None,
            window_intervals: disparity_obs::window::DEFAULT_INTERVALS,
            postmortem_dir: None,
        }
    }
}

/// One response on its way back to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The submitter's sequence number, echoed for reordering (batch mode
    /// restores input order; the TCP writer sends in completion order).
    pub seq: u64,
    /// The full response line, without trailing newline.
    pub line: String,
}

/// An accepted unit of work.
#[derive(Debug)]
pub struct Job {
    /// The parsed request.
    pub request: Request,
    /// Submitter sequence number, echoed in [`Reply::seq`].
    pub seq: u64,
    /// Request trace id: stamped onto the response line, installed as
    /// the worker's span context, tagged onto flight events.
    pub trace: TraceId,
    /// When admission accepted the job (start of its queue wait).
    pub accepted: Instant,
    /// Where the response line goes.
    pub reply: Sender<Reply>,
}

/// Monotonic counters exposed via the `stats` op.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests handed to `submit`/`submit_blocking` (including refused).
    pub received: AtomicU64,
    /// Requests that produced an `ok` response.
    pub completed: AtomicU64,
    /// Requests bounced by admission control.
    pub overloaded: AtomicU64,
    /// Requests refused because the service is draining.
    pub shutting_down: AtomicU64,
    /// Requests rejected by the diag gate.
    pub rejected: AtomicU64,
    /// Requests abandoned at their soft deadline.
    pub timeouts: AtomicU64,
    /// Requests answered with `error`.
    pub errors: AtomicU64,
    /// Graph-cache hits.
    pub cache_hits: AtomicU64,
    /// Graph-cache misses (spec built and analyzed from scratch).
    pub cache_misses: AtomicU64,
    /// `patch` requests whose derived entry came from the delta path
    /// (rebase of a cached basis, not a cold rebuild).
    pub patched: AtomicU64,
    /// `patch` requests answered verbatim from the response memo.
    pub patch_memo_hits: AtomicU64,
    /// `optimize` requests that produced a validated plan.
    pub optimized: AtomicU64,
    /// Optimizer search states scored through the incremental engine.
    pub opt_delta_scored: AtomicU64,
    /// Optimizer search states scored through the cold pipeline.
    pub opt_cold_scored: AtomicU64,
    /// Panics contained by the per-request isolation boundary (answered
    /// `internal_error`) plus worker deaths (unanswered).
    pub panics: AtomicU64,
    /// Requests bounced because their spec is quarantined.
    pub quarantined: AtomicU64,
    /// Dead workers the supervisor replaced.
    pub worker_respawns: AtomicU64,
}

/// Panics charged to one spec hash before it is quarantined.
pub const QUARANTINE_AFTER: u32 = 2;

/// Panic bookkeeping: how many times each spec hash has panicked. A spec
/// at [`QUARANTINE_AFTER`] strikes is quarantined — requests carrying it
/// are answered `rejected` without touching a worker's analysis path.
#[derive(Debug, Default)]
struct Quarantine {
    strikes: Mutex<HashMap<u64, u32>>,
}

impl Quarantine {
    fn is_quarantined(&self, hash: u64) -> bool {
        lock(&self.strikes)
            .get(&hash)
            .is_some_and(|&n| n >= QUARANTINE_AFTER)
    }

    /// Records one panic; `true` when this strike quarantines the spec.
    fn record(&self, hash: u64) -> bool {
        let mut strikes = lock(&self.strikes);
        let n = strikes.entry(hash).or_insert(0);
        *n += 1;
        *n == QUARANTINE_AFTER
    }

    /// Number of quarantined specs.
    fn len(&self) -> usize {
        lock(&self.strikes)
            .values()
            .filter(|&&n| n >= QUARANTINE_AFTER)
            .count()
    }
}

/// A snapshot of one counter (relaxed load; the counters are gauges).
fn load(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // conc: stats gauge; staleness only skews a report
}

fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // conc: stats gauge; count, not ordering
}

/// Per-endpoint latency: the cumulative-since-start histogram the
/// `stats` op has always reported, plus the sliding window behind the
/// `metrics` op's live percentiles.
#[derive(Debug)]
struct EndpointLatency {
    cumulative: Histogram,
    window: WindowedHistogram,
}

/// The service. Construct with [`Service::start`]; share via `Arc`.
pub struct Service {
    config: ServiceConfig,
    queue: Arc<BoundedQueue<Job>>,
    cache: ShardedCache,
    /// Public so transports and tests can read hit/miss counts.
    pub counters: Counters,
    latency: Mutex<HashMap<&'static str, EndpointLatency>>,
    on_shutdown: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    rotator: Mutex<Option<JoinHandle<()>>>,
    quarantine: Quarantine,
    /// Rendered `result` bodies of successful `patch` requests, keyed by
    /// `(base, edits, task, method, chain_limit)`. Entries are pure
    /// functions of content-addressed inputs, so they never go stale;
    /// the map is bounded by a generational clear at
    /// [`PATCH_MEMO_CAPACITY`].
    patch_memo: Mutex<HashMap<PatchKey, Arc<str>>>,
}

/// Memo key of one `patch` query: base hash, FNV-1a of the edits' wire
/// rendering, task name, method spelling, chain limit.
type PatchKey = (u64, u64, String, &'static str, usize);

/// Memoized `patch` responses kept before the map is cleared wholesale.
const PATCH_MEMO_CAPACITY: usize = 1024;

/// FNV-1a of the canonical wire rendering of an edit sequence.
fn edits_fingerprint(edits: &[SpecEdit]) -> u64 {
    let rendered = Value::Array(edits.iter().map(SpecEdit::to_json).collect()).to_string();
    hash_canonical_text(&rendered)
}

fn patch_key(
    base: u64,
    edits: &[SpecEdit],
    task: &str,
    method: Method,
    chain_limit: usize,
) -> PatchKey {
    (
        base,
        edits_fingerprint(edits),
        task.to_string(),
        method_str(method),
        chain_limit,
    )
}

impl core::fmt::Debug for Service {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Service")
            .field("config", &self.config)
            .field("queue_depth", &self.queue.len())
            .field("cached_graphs", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl Service {
    /// Starts the worker pool (and its supervisor) and returns the shared
    /// service handle.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Arc<Service> {
        // The flight recorder allocates its journals on first use; doing
        // it here keeps every later record call allocation-free.
        flight::init();
        let service = Arc::new(Service {
            queue: Arc::new(BoundedQueue::new(config.queue_capacity)),
            cache: ShardedCache::new(config.cache_capacity),
            counters: Counters::default(),
            latency: Mutex::new(HashMap::new()),
            on_shutdown: Mutex::new(None),
            workers: Mutex::new(Vec::new()),
            supervisor: Mutex::new(None),
            rotator: Mutex::new(None),
            quarantine: Quarantine::default(),
            patch_memo: Mutex::new(HashMap::new()),
            config,
        });
        let n = service.config.workers.max(1);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let svc = Arc::clone(&service);
            handles.push(std::thread::spawn(move || svc.worker_loop()));
        }
        *lock(&service.workers) = handles;
        let svc = Arc::clone(&service);
        *lock(&service.supervisor) = Some(std::thread::spawn(move || svc.supervisor_loop()));
        if let Some(interval) = service.config.metrics_interval {
            let svc = Arc::clone(&service);
            *lock(&service.rotator) =
                Some(std::thread::spawn(move || svc.rotator_loop(interval)));
        }
        service
    }

    /// The window-rotation thread: advances every sliding latency window
    /// once per `interval`, so the `metrics` op's live percentiles cover
    /// the last `window_intervals x interval` of traffic. Exits with the
    /// drain (polls the queue's closed flag between short sleeps so
    /// shutdown never waits a full interval).
    fn rotator_loop(&self, interval: Duration) {
        let poll = interval.min(Duration::from_millis(50));
        let mut next = Instant::now() + interval;
        loop {
            if self.queue.is_closed() {
                return;
            }
            std::thread::sleep(poll);
            if Instant::now() >= next {
                self.rotate_windows();
                next += interval;
            }
        }
    }

    /// Advance every endpoint's sliding latency window one interval.
    pub fn rotate_windows(&self) {
        for latency in lock(&self.latency).values_mut() {
            latency.window.rotate();
        }
    }

    /// The supervisor: polls the worker pool and replaces any thread that
    /// died (a panic that escaped the per-request isolation boundary).
    /// Exits once the drain starts — workers then finish on their own.
    fn supervisor_loop(self: &Arc<Service>) {
        const POLL: std::time::Duration = std::time::Duration::from_millis(20);
        loop {
            if self.queue.is_closed() {
                return;
            }
            std::thread::sleep(POLL);
            let mut dead = Vec::new();
            {
                let mut workers = lock(&self.workers);
                let mut i = 0;
                while i < workers.len() {
                    if workers[i].is_finished() {
                        dead.push(workers.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                for _ in 0..dead.len() {
                    // Racing a drain: finished workers may simply have
                    // exited normally; never respawn into a closed queue.
                    if self.queue.is_closed() {
                        break;
                    }
                    bump(&self.counters.worker_respawns);
                    disparity_obs::counter_add("service.worker.respawns", 1);
                    let svc = Arc::clone(self);
                    workers.push(std::thread::spawn(move || svc.worker_loop()));
                }
            }
            // Collect the corpses (and their panic payloads) off-lock.
            for handle in dead {
                let _ = handle.join();
            }
        }
    }

    /// Registers the hook invoked when a client sends the `shutdown` op.
    /// The hook runs on a worker thread *after* the shutdown request has
    /// been answered; it must not join the workers itself (hand off to
    /// another thread, as [`serve`'s main loop] does).
    ///
    /// [`serve`'s main loop]: crate::server
    pub fn set_shutdown_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *lock(&self.on_shutdown) = Some(Box::new(hook));
    }

    /// Admission-controlled submit: a full queue answers `overloaded`
    /// immediately on `reply`, a draining service answers
    /// `shutting_down`. Returns `true` when the job was accepted.
    pub fn submit(&self, request: Request, seq: u64, trace: TraceId, reply: &Sender<Reply>) -> bool {
        bump(&self.counters.received);
        self.observe_queue_depth();
        let scope = disparity_obs::trace_scope(trace.as_u64());
        flight::record(EventKind::Accept, 0);
        let job = Job {
            request,
            seq,
            trace,
            accepted: Instant::now(),
            reply: reply.clone(),
        };
        let admitted = match self.queue.try_push(job) {
            Ok(()) => {
                flight::record(EventKind::Admit, 0);
                true
            }
            Err((job, reason)) => {
                self.refuse(job, reason);
                false
            }
        };
        drop(scope);
        admitted
    }

    /// Backpressure submit for batch mode: blocks while the queue is
    /// full; only a draining service refuses (answered inline).
    pub fn submit_blocking(
        &self,
        request: Request,
        seq: u64,
        trace: TraceId,
        reply: &Sender<Reply>,
    ) -> bool {
        bump(&self.counters.received);
        self.observe_queue_depth();
        let scope = disparity_obs::trace_scope(trace.as_u64());
        flight::record(EventKind::Accept, 0);
        let job = Job {
            request,
            seq,
            trace,
            accepted: Instant::now(),
            reply: reply.clone(),
        };
        let admitted = match self.queue.push_blocking(job) {
            Ok(()) => {
                flight::record(EventKind::Admit, 0);
                true
            }
            Err((job, reason)) => {
                self.refuse(job, reason);
                false
            }
        };
        drop(scope);
        admitted
    }

    /// Answers a malformed request line on behalf of a transport. The
    /// error never enters the queue, so parse failures cannot displace
    /// analyzable work.
    pub fn reply_parse_error(err: &ProtoError, seq: u64, trace: TraceId, reply: &Sender<Reply>) {
        disparity_obs::counter_add("service.parse_errors", 1);
        let scope = disparity_obs::trace_scope(trace.as_u64());
        // The span is the request's whole trace: a parse failure never
        // reaches the queue or a worker, so nothing else records for it.
        let _span = disparity_obs::span("service.parse_error");
        flight::record(EventKind::ParseError, 0);
        drop(scope);
        let line = response_line(
            &err.id,
            Status::Error,
            ResponseBody::Error(err.to_string()),
        );
        let _ = reply.send(Reply {
            seq,
            line: attach_trace(&line, trace),
        });
    }

    fn refuse(&self, job: Job, reason: PushError) {
        // Refusals never reach a worker, so the refusal span (and its
        // flight event) is the request's whole trace — recorded here on
        // the submitting thread, inside the caller's trace scope.
        let mut span = disparity_obs::span("service.refuse");
        let status = match reason {
            PushError::Full => {
                bump(&self.counters.overloaded);
                disparity_obs::counter_add("service.overloaded", 1);
                flight::record(EventKind::Overload, 0);
                Status::Overloaded
            }
            PushError::Closed => {
                bump(&self.counters.shutting_down);
                flight::record(EventKind::ShuttingDown, 0);
                Status::ShuttingDown
            }
        };
        span.attr("status", status.as_str());
        let line = response_line(
            &job.request.id,
            status,
            ResponseBody::Error(match reason {
                PushError::Full => "queue full".into(),
                PushError::Closed => "server is shutting down".into(),
            }),
        );
        let _ = job.reply.send(Reply {
            seq: job.seq,
            line: attach_trace(&line, job.trace),
        });
    }

    /// Drains and stops: closes the intake (late submissions get
    /// `shutting_down`), retires the supervisor, lets the workers finish
    /// every accepted job, and joins them. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        // The supervisor exits on its next poll once the queue is closed;
        // join it first so it cannot respawn into the drain. The window
        // rotator watches the same flag.
        if let Some(h) = lock(&self.supervisor).take() {
            let _ = h.join();
        }
        if let Some(h) = lock(&self.rotator).take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Current intake depth (gauge).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    fn observe_queue_depth(&self) {
        if disparity_obs::is_enabled() {
            let depth = i64::try_from(self.queue.len()).unwrap_or(i64::MAX);
            disparity_obs::observe("service.queue.depth", depth);
        }
    }

    fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            // Install the request's trace context for the whole job:
            // every span the processing opens (cache lookup, WCRT,
            // pairwise sweep) and every flight event recorded below
            // carries the id echoed in the response line.
            let trace = job.trace;
            let _scope = disparity_obs::trace_scope(trace.as_u64());
            let dequeued = Instant::now();
            let wait = dequeued.saturating_duration_since(job.accepted);
            flight::record(
                EventKind::Dequeue,
                u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX),
            );
            disparity_obs::record_span("service.queue_wait", job.accepted, dequeued);
            // The worker-kill test op escapes the isolation boundary by
            // design: take the quarantine strike, then die. The request
            // goes unanswered (its reply sender drops with the job) and
            // the supervisor must replace this thread. Once the spec is
            // quarantined, `process_isolated` answers `rejected` instead
            // and no further workers die for it.
            if let Op::Panic {
                kind: PanicKind::Worker,
                spec,
            } = &job.request.op
            {
                let hash = spec.canonical_hash();
                if !self.quarantine.is_quarantined(hash) {
                    bump(&self.counters.panics);
                    disparity_obs::counter_add("service.panics", 1);
                    flight::record(EventKind::Panic, hash);
                    flight::record(EventKind::WorkerDeath, hash);
                    if self.quarantine.record(hash) {
                        flight::record(EventKind::Quarantine, hash);
                        self.write_postmortem("quarantine", trace.as_u64());
                    }
                    drop(job);
                    panic!("deliberate worker death (op \"panic\", mode \"worker\")");
                }
            }
            let started = Instant::now();
            let mut span = disparity_obs::span("service.request");
            span.attr("endpoint", job.request.endpoint());
            let is_shutdown = matches!(job.request.op, Op::Shutdown);
            let line = self.process_isolated(&job.request);
            drop(span);
            self.record_latency(job.request.endpoint(), started);
            let _ = job.reply.send(Reply {
                seq: job.seq,
                line: attach_trace(&line, trace),
            });
            if is_shutdown {
                if let Some(hook) = lock(&self.on_shutdown).as_ref() {
                    hook();
                }
            }
        }
    }

    fn record_latency(&self, endpoint: &'static str, started: Instant) {
        let elapsed = started.elapsed();
        let micros = i64::try_from(elapsed.as_micros()).unwrap_or(i64::MAX);
        let mut latency = lock(&self.latency);
        let entry = latency.entry(endpoint).or_insert_with(|| EndpointLatency {
            cumulative: Histogram::new(),
            window: WindowedHistogram::new(self.config.window_intervals),
        });
        entry.cumulative.record(micros);
        entry.window.record(micros);
        drop(latency);
        if disparity_obs::is_enabled() {
            let nanos = i64::try_from(elapsed.as_nanos()).unwrap_or(i64::MAX);
            disparity_obs::observe_duration(
                "service.latency",
                disparity_model::time::Duration::from_nanos(nanos),
            );
        }
    }

    /// [`Service::process`] behind the panic-isolation boundary: the
    /// quarantine gate in front, `catch_unwind` around the processing.
    /// A panic yields a structured `internal_error` response (spec
    /// `canonical_hash` + panic payload in the message) instead of a dead
    /// worker; the panicking spec takes a quarantine strike.
    ///
    /// Workers route every job through here. `AssertUnwindSafe` is sound
    /// because all of the service's shared state is panic-tolerant: every
    /// mutex acquisition recovers from poisoning (`lock`), counters are
    /// atomics, and the graph cache only ever holds fully-built entries.
    #[must_use]
    pub fn process_isolated(&self, request: &Request) -> String {
        // Render the canonical form once; the quarantine gate consumes
        // the hash here and the cache lookup reuses text + hash below.
        let canonical = request.op.spec().map(SystemSpec::canonical);
        let hash = canonical.as_ref().map(|c| c.hash);
        if let Some(hash) = hash {
            if self.quarantine.is_quarantined(hash) {
                bump(&self.counters.quarantined);
                disparity_obs::counter_add("service.quarantine.rejected", 1);
                flight::record(EventKind::Error, hash);
                return response_line(
                    &request.id,
                    Status::Rejected,
                    ResponseBody::Error(format!(
                        "spec {hash:016x} is quarantined after repeated panics"
                    )),
                );
            }
        }
        match std::panic::catch_unwind(AssertUnwindSafe(|| {
            self.process_with(request, canonical.as_ref())
        })) {
            Ok(line) => line,
            Err(payload) => {
                bump(&self.counters.panics);
                disparity_obs::counter_add("service.panics", 1);
                let trace = disparity_obs::current_trace();
                flight::record(EventKind::Panic, hash.unwrap_or(0));
                if let Some(hash) = hash {
                    if self.quarantine.record(hash) {
                        disparity_obs::counter_add("service.quarantine.added", 1);
                        flight::record(EventKind::Quarantine, hash);
                        self.write_postmortem("quarantine", trace);
                    }
                }
                self.write_postmortem("panic", trace);
                let spec_text =
                    hash.map_or_else(|| "none".to_string(), |h| format!("{h:016x}"));
                response_line(
                    &request.id,
                    Status::InternalError,
                    ResponseBody::Error(format!(
                        "panic while processing (spec {spec_text}): {}",
                        panic_message(payload.as_ref())
                    )),
                )
            }
        }
    }

    /// Best-effort postmortem dump: snapshot the flight journals into
    /// `postmortem_dir` (when configured). Failures are swallowed — a
    /// full disk must not turn a contained panic into a lost response.
    fn write_postmortem(&self, reason: &str, trace: u64) {
        if let Some(dir) = &self.config.postmortem_dir {
            let _ = flight::write_postmortem(dir, reason, trace);
        }
    }

    /// Processes one request to a complete response line. Pure with
    /// respect to the transport: the line depends on the request and the
    /// analysis result, never on cache or queue state (`stats` excepted).
    #[must_use]
    pub fn process(&self, request: &Request) -> String {
        self.process_with(request, None)
    }

    /// [`Self::process`] with an optionally pre-rendered canonical form
    /// of the request's spec (threaded from [`Self::process_isolated`] so
    /// each request renders the spec at most once).
    fn process_with(&self, request: &Request, canonical: Option<&Canonical>) -> String {
        // Warm `patch` fast path: an identical patch query was answered
        // before, so splice its memoized `result` bytes around this
        // request's id — no spec, graph, or engine work at all.
        if let Op::Patch {
            base,
            edits,
            task,
            method,
            chain_limit,
        } = &request.op
        {
            let key = patch_key(*base, edits, task, *method, *chain_limit);
            let memoized = lock(&self.patch_memo).get(&key).cloned();
            if let Some(body) = memoized {
                bump(&self.counters.completed);
                bump(&self.counters.patch_memo_hits);
                disparity_obs::counter_add("service.patch.memo_hits", 1);
                flight::record(EventKind::Completed, 0);
                return ok_line_prerendered(&request.id, &body);
            }
        }
        let outcome = self.dispatch(request, canonical);
        let (status, body) = match outcome {
            Ok(result) => {
                bump(&self.counters.completed);
                flight::record(EventKind::Completed, 0);
                (Status::Ok, ResponseBody::Result(result))
            }
            Err(Refusal::Timeout) => {
                bump(&self.counters.timeouts);
                disparity_obs::counter_add("service.timeouts", 1);
                flight::record(EventKind::Deadline, request.deadline_ms.unwrap_or(0));
                (
                    Status::Timeout,
                    ResponseBody::Error("soft deadline exceeded".into()),
                )
            }
            Err(Refusal::DiagGate(detail)) => {
                bump(&self.counters.rejected);
                disparity_obs::counter_add("service.diag_rejects", 1);
                flight::record(EventKind::Error, 0);
                (Status::Rejected, ResponseBody::Error(detail))
            }
            Err(Refusal::Failed(detail)) => {
                bump(&self.counters.errors);
                disparity_obs::counter_add("service.errors", 1);
                flight::record(EventKind::Error, 0);
                (Status::Error, ResponseBody::Error(detail))
            }
        };
        response_line(&request.id, status, body)
    }

    fn dispatch(&self, request: &Request, canonical: Option<&Canonical>) -> Result<Value, Refusal> {
        let deadline = request
            .deadline_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms));
        match &request.op {
            Op::Ping => Ok(json::object(vec![("pong", Value::Bool(true))])),
            Op::Stats => Ok(self.stats_json()),
            Op::Metrics => Ok(self.metrics_json()),
            Op::Dump => {
                flight::record(EventKind::Dump, 0);
                let trace = disparity_obs::current_trace();
                let events = flight::snapshot().len();
                let path = match &self.config.postmortem_dir {
                    None => Value::Null,
                    Some(dir) => {
                        let path = flight::write_postmortem(dir, "dump", trace)
                            .map_err(|e| Refusal::Failed(format!("postmortem dump failed: {e}")))?;
                        Value::from(path.display().to_string())
                    }
                };
                Ok(json::object(vec![
                    ("dumped", Value::Bool(!matches!(path, Value::Null))),
                    ("path", path),
                    ("events", Value::from(events)),
                ]))
            }
            Op::Health => Ok(self.health_json()),
            Op::Panic { kind, spec } => {
                // Testing aid for the isolation layer; the panic is caught
                // by `process_isolated` (mode "unwind") or already handled
                // in `worker_loop` (mode "worker" — reaching this arm via
                // a direct `process` call still panics, by design).
                let hash = spec.canonical_hash();
                panic!("deliberate panic (op \"panic\", mode {kind:?}, spec {hash:016x})");
            }
            Op::Sleep { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(*millis));
                Ok(json::object(vec![(
                    "slept_ms",
                    Value::Int(i64::try_from(*millis).unwrap_or(i64::MAX)),
                )]))
            }
            Op::Shutdown => Ok(json::object(vec![("shutting_down", Value::Bool(true))])),
            Op::Disparity {
                spec,
                task,
                method,
                chain_limit,
            } => {
                let entry = self.graph_entry(spec, canonical, *chain_limit)?;
                self.disparity_value(&entry, task, *method, *chain_limit, deadline)
            }
            Op::Patch {
                base,
                edits,
                task,
                method,
                chain_limit,
            } => self.patch(*base, edits, task, *method, *chain_limit, deadline),
            Op::Backward { spec, chain } => {
                let entry = self.graph_entry(spec, canonical, crate::proto::DEFAULT_CHAIN_LIMIT)?;
                let ids = chain
                    .iter()
                    .map(|name| find_task(&entry, name))
                    .collect::<Result<Vec<_>, _>>()?;
                let chain = Chain::new(&entry.graph, ids)
                    .map_err(|e| Refusal::Failed(format!("bad chain: {e}")))?;
                run_with_deadline(deadline, |budget| {
                    let engine = self.engine(&entry, budget);
                    let bounds = engine.backward_bounds(&chain)?;
                    Ok(encode_backward_result(&entry.graph, &chain, bounds))
                })
            }
            Op::Buffer {
                spec,
                task,
                method,
                chain_limit,
                max_rounds,
            } => {
                let entry = self.graph_entry(spec, canonical, *chain_limit)?;
                let task = find_task(&entry, task)?;
                let config = AnalysisConfig {
                    method: *method,
                    chain_limit: *chain_limit,
                };
                // Algorithm 1 re-analyzes mutated graphs internally, so it
                // cannot reuse the cached engine (nor the soft deadline's
                // budget hook) — the cache still saves the schedulability
                // precheck via the cached entry.
                let outcome = optimize_task(&entry.graph, task, config, *max_rounds)
                    .map_err(refusal_of)?;
                Ok(encode_buffer_result(&entry.graph, &outcome))
            }
            Op::Optimize {
                spec,
                base,
                budget_slots,
                targets,
                backend,
                seed,
                allow_overbuffering,
                method,
                chain_limit,
                sim_horizon_ms,
            } => {
                let entry = match (spec, base) {
                    (Some(spec), None) => self.graph_entry(spec, canonical, *chain_limit)?,
                    (None, Some(base)) => match self.cache.get_by_key(*base) {
                        BaseLookup::Hit(entry) => entry,
                        BaseLookup::Miss => {
                            return Err(Refusal::Failed(format!(
                                "unknown base {base:016x}: not cached (send the full spec once first)"
                            )));
                        }
                        BaseLookup::Ambiguous => {
                            return Err(Refusal::Failed(format!(
                                "ambiguous base {base:016x}: several cached specs collide on this hash"
                            )));
                        }
                    },
                    // `Request::from_value` enforces exactly-one; a
                    // hand-built Op that violates it is answered, not
                    // panicked on.
                    _ => {
                        return Err(Refusal::Failed(
                            "\"optimize\" needs exactly one of \"spec\" or \"base\"".into(),
                        ));
                    }
                };
                let config = AnalysisConfig {
                    method: *method,
                    chain_limit: *chain_limit,
                };
                // The optimizer re-analyzes candidate specs through its
                // own incremental engine (cold fallback included), so like
                // `buffer` it cannot thread the soft deadline's budget
                // hook; the deadline is checked once planning returns.
                let analyzed = AnalyzedSystem::analyze(entry.spec(), config)
                    .map_err(|e| Refusal::Failed(format!("analysis failed: {e}")))?;
                let plan_request = PlanRequest {
                    budget: BufferBudget::slots(*budget_slots),
                    targets: targets.clone(),
                    seed: *seed,
                    forbid_new_findings: !*allow_overbuffering,
                };
                let plan =
                    optimize_analyzed(&analyzed, &plan_request, *backend).map_err(opt_refusal)?;
                if deadline.is_some_and(|d| Instant::now() > d) {
                    return Err(Refusal::Timeout);
                }
                bump(&self.counters.optimized);
                self.counters
                    .opt_delta_scored
                    // conc: stats gauge; count, not ordering
                    .fetch_add(plan.stats.delta_scored, Ordering::Relaxed);
                self.counters
                    .opt_cold_scored
                    // conc: stats gauge; count, not ordering
                    .fetch_add(plan.stats.cold_scored, Ordering::Relaxed);
                disparity_obs::counter_add("service.optimized", 1);
                // Re-admit the optimized spec through the same gates a
                // full-spec request passes (diag gate included — a clean
                // plan must stay admissible) and cache it so follow-up
                // requests can address it by `optimized_spec_hash`.
                let mut opt_spec = entry.spec().clone();
                if let Err((index, e)) = apply_all(&mut opt_spec, &plan.edits()) {
                    return Err(Refusal::Failed(format!("bad plan edit [{index}]: {e}")));
                }
                let canonical2 = opt_spec.canonical();
                let opt_entry = match self.lookup_entry(&canonical2) {
                    Some(e) => e,
                    None => {
                        self.diag_admit(&opt_spec, *chain_limit)?;
                        self.cold_build(&opt_spec, &canonical2)?
                    }
                };
                let sim = match sim_horizon_ms {
                    None => None,
                    Some(ms) => Some(sim_validate(&opt_entry, &plan, *ms, *seed)?),
                };
                Ok(encode_optimize_result(&plan, canonical2.hash, sim))
            }
        }
    }

    fn engine<'a>(
        &self,
        entry: &'a GraphEntry,
        budget: Option<&'a (dyn Fn() -> bool + Sync)>,
    ) -> AnalysisEngine<'a> {
        let mut engine = AnalysisEngine::new(&entry.graph, &entry.rt)
            .with_hop_cache(entry.hops.clone())
            .with_workers(self.config.engine_workers.max(1));
        if let Some(hook) = budget {
            engine = engine.with_budget_hook(hook);
        }
        engine
    }

    /// The shared tail of `disparity` and `patch`: analyze `task` against
    /// an entry and encode the result. Keeping both ops on one code path
    /// is what makes a patch response byte-identical to a full-spec
    /// request for the edited system.
    fn disparity_value(
        &self,
        entry: &Arc<GraphEntry>,
        task: &str,
        method: Method,
        chain_limit: usize,
        deadline: Option<Instant>,
    ) -> Result<Value, Refusal> {
        let task = find_task(entry, task)?;
        let config = AnalysisConfig {
            method,
            chain_limit,
        };
        run_with_deadline(deadline, |budget| {
            let engine = self.engine(entry, budget);
            let report = engine.worst_case_disparity(task, config)?;
            Ok(encode_disparity_result(&entry.graph, &report))
        })
    }

    /// The `patch` op: look up the cached base by hash, apply the edits,
    /// derive an entry for the edited spec (incrementally when possible),
    /// and answer the disparity query against it. Successful results are
    /// memoized by `(base, edits, task, method, chain_limit)`.
    fn patch(
        &self,
        base: u64,
        edits: &[SpecEdit],
        task: &str,
        method: Method,
        chain_limit: usize,
        deadline: Option<Instant>,
    ) -> Result<Value, Refusal> {
        let base_entry = match self.cache.get_by_key(base) {
            BaseLookup::Hit(entry) => entry,
            BaseLookup::Miss => {
                return Err(Refusal::Failed(format!(
                    "unknown base {base:016x}: not cached (send the full spec once first)"
                )));
            }
            BaseLookup::Ambiguous => {
                return Err(Refusal::Failed(format!(
                    "ambiguous base {base:016x}: several cached specs collide on this hash"
                )));
            }
        };
        let mut spec2 = base_entry.spec().clone();
        if let Err((index, e)) = apply_all(&mut spec2, edits) {
            return Err(Refusal::Failed(format!("bad edit [{index}]: {e}")));
        }
        let canonical2 = spec2.canonical();
        let entry = self.derived_entry(&base_entry, edits, &spec2, &canonical2, chain_limit)?;
        let value = self.disparity_value(&entry, task, method, chain_limit, deadline)?;
        let mut memo = lock(&self.patch_memo);
        if memo.len() >= PATCH_MEMO_CAPACITY {
            memo.clear();
        }
        memo.insert(
            patch_key(base, edits, task, method, chain_limit),
            Arc::from(value.to_string()),
        );
        drop(memo);
        Ok(value)
    }

    /// Cache lookup / incremental derivation of the entry for an edited
    /// spec. The edited spec passes exactly the gates a full-spec request
    /// would (diag gate, schedulability admission); any delta failure
    /// falls back to the cold build so error responses stay
    /// byte-identical too.
    fn derived_entry(
        &self,
        base: &Arc<GraphEntry>,
        edits: &[SpecEdit],
        spec2: &SystemSpec,
        canonical2: &Canonical,
        chain_limit: usize,
    ) -> Result<Arc<GraphEntry>, Refusal> {
        if let Some(entry) = self.lookup_entry(canonical2) {
            return Ok(entry);
        }
        self.diag_admit(spec2, chain_limit)?;
        let mut basis = DeltaBasis {
            spec: base.spec().clone(),
            graph: base.graph.clone(),
            rt: base.rt.clone(),
            hops: base.hops.clone(),
        };
        for edit in edits {
            match basis.rebase(edit) {
                Ok(next) => basis = next,
                // e.g. a dirty-ECU overload: rebuild cold so the error
                // message matches a full-spec request exactly.
                Err(_) => return self.cold_build(spec2, canonical2),
            }
        }
        // The cold path's schedulability admission, from the
        // incrementally computed response times (same count, same text).
        let violations = basis
            .graph
            .tasks()
            .iter()
            .filter(|t| basis.rt.wcrt(t.id()) > t.period())
            .count();
        if violations > 0 {
            return Err(Refusal::Failed(format!(
                "unschedulable: {violations} task(s) miss their deadline"
            )));
        }
        bump(&self.counters.patched);
        disparity_obs::counter_add("service.patch.derived", 1);
        let mut entry = GraphEntry::new(
            canonical2.clone(),
            spec2.clone(),
            basis.graph,
            basis.rt,
        );
        // Carry the surviving hop bounds into the derived entry.
        entry.hops = basis.hops;
        Ok(self.cache.insert(canonical2.hash, entry))
    }

    /// Cache lookup half of [`Self::graph_entry`] (hit/miss accounting).
    fn lookup_entry(&self, canonical: &Canonical) -> Option<Arc<GraphEntry>> {
        let mut lookup = disparity_obs::span("service.cache.lookup");
        let cached = self.cache.get(canonical.hash, &canonical.text);
        lookup.attr("hit", i64::from(cached.is_some()));
        drop(lookup);
        if cached.is_some() {
            bump(&self.counters.cache_hits);
            disparity_obs::counter_add("service.cache.hits", 1);
            flight::record(EventKind::CacheHit, canonical.hash);
        } else {
            bump(&self.counters.cache_misses);
            disparity_obs::counter_add("service.cache.misses", 1);
            flight::record(EventKind::CacheMiss, canonical.hash);
        }
        cached
    }

    /// The optional diag admission gate, applied to cold and derived
    /// specs alike.
    fn diag_admit(&self, spec: &SystemSpec, chain_limit: usize) -> Result<(), Refusal> {
        if self.config.diag_gate {
            let diags = analyze_spec(spec, &DiagConfig { chain_limit })
                .map_err(|e| Refusal::Failed(format!("bad spec: {e}")))?;
            if diags.has_errors() {
                let mut detail = format!("diag gate: {} error(s):", diags.error_count());
                for d in diags.with_severity(disparity_analyzer::diag::Severity::Error) {
                    detail.push(' ');
                    detail.push_str(d.code.as_str());
                }
                return Err(Refusal::DiagGate(detail));
            }
        }
        Ok(())
    }

    /// Cold build + schedulability admission + cache insert (the miss
    /// path of [`Self::graph_entry`]; assumes the diag gate already ran).
    fn cold_build(
        &self,
        spec: &SystemSpec,
        canonical: &Canonical,
    ) -> Result<Arc<GraphEntry>, Refusal> {
        let graph = spec
            .build()
            .map_err(|e| Refusal::Failed(format!("bad spec: {e}")))?;
        let sched = analyze(&graph).map_err(|e| Refusal::Failed(format!("analysis failed: {e}")))?;
        if !sched.all_schedulable() {
            return Err(Refusal::Failed(format!(
                "unschedulable: {} task(s) miss their deadline",
                sched.violations().len()
            )));
        }
        let rt = sched.into_response_times();
        let entry = GraphEntry::new(canonical.clone(), spec.clone(), graph, rt);
        Ok(self.cache.insert(canonical.hash, entry))
    }

    /// Cache lookup / build of the analyzed-graph entry for `spec`.
    /// `canonical` threads a pre-rendered canonical form through (from
    /// [`Self::process_isolated`]); `None` renders it here — either way
    /// the spec is rendered exactly once per request.
    fn graph_entry(
        &self,
        spec: &SystemSpec,
        canonical: Option<&Canonical>,
        chain_limit: usize,
    ) -> Result<Arc<GraphEntry>, Refusal> {
        let rendered;
        let canonical = match canonical {
            Some(c) => c,
            None => {
                rendered = spec.canonical();
                &rendered
            }
        };
        if let Some(entry) = self.lookup_entry(canonical) {
            return Ok(entry);
        }
        self.diag_admit(spec, chain_limit)?;
        self.cold_build(spec, canonical)
    }

    /// The `stats` payload: counters, gauges, and per-endpoint latency
    /// percentiles (microseconds).
    #[must_use]
    pub fn stats_json(&self) -> Value {
        let c = &self.counters;
        let counters = json::object(vec![
            ("received", uint(load(&c.received))),
            ("completed", uint(load(&c.completed))),
            ("overloaded", uint(load(&c.overloaded))),
            ("shutting_down", uint(load(&c.shutting_down))),
            ("rejected", uint(load(&c.rejected))),
            ("timeouts", uint(load(&c.timeouts))),
            ("errors", uint(load(&c.errors))),
            ("cache_hits", uint(load(&c.cache_hits))),
            ("cache_misses", uint(load(&c.cache_misses))),
            ("patched", uint(load(&c.patched))),
            ("patch_memo_hits", uint(load(&c.patch_memo_hits))),
            ("optimized", uint(load(&c.optimized))),
            ("opt_delta_scored", uint(load(&c.opt_delta_scored))),
            ("opt_cold_scored", uint(load(&c.opt_cold_scored))),
            ("panics", uint(load(&c.panics))),
            ("quarantined", uint(load(&c.quarantined))),
            ("worker_respawns", uint(load(&c.worker_respawns))),
        ]);
        let guard = lock(&self.latency);
        let mut latency: Vec<(String, Value)> = guard
            .iter()
            .map(|(endpoint, lat)| {
                let s = lat.cumulative.summary();
                (
                    (*endpoint).to_string(),
                    json::object(vec![
                        ("count", uint(s.count)),
                        ("p50_us", Value::Int(s.p50)),
                        ("p95_us", Value::Int(s.p95)),
                        ("p99_us", Value::Int(s.p99)),
                        ("max_us", Value::Int(s.max)),
                    ]),
                )
            })
            .collect();
        latency.sort_by(|a, b| a.0.cmp(&b.0));
        let windowed = Self::window_json(&guard);
        drop(guard);
        json::object(vec![
            ("counters", counters),
            ("queue_depth", Value::from(self.queue.len())),
            ("queue_capacity", Value::from(self.queue.capacity())),
            ("cached_graphs", Value::from(self.cache.len())),
            ("workers_configured", Value::from(self.config.workers.max(1))),
            ("workers_alive", Value::from(self.workers_alive())),
            ("quarantined_specs", Value::from(self.quarantine.len())),
            ("latency_us", Value::Object(latency)),
            ("window_latency_us", windowed),
        ])
    }

    /// Per-endpoint sliding-window latency summaries, sorted by endpoint.
    fn window_json(latency: &HashMap<&'static str, EndpointLatency>) -> Value {
        let mut windowed: Vec<(String, Value)> = latency
            .iter()
            .map(|(endpoint, lat)| {
                let s = lat.window.summary();
                (
                    (*endpoint).to_string(),
                    json::object(vec![
                        ("count", uint(s.count)),
                        ("p50_us", Value::Int(s.p50)),
                        ("p95_us", Value::Int(s.p95)),
                        ("p99_us", Value::Int(s.p99)),
                        ("max_us", Value::Int(s.max)),
                    ]),
                )
            })
            .collect();
        windowed.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(windowed)
    }

    /// The `metrics` payload: Prometheus-style text exposition plus the
    /// sliding-window latency summaries as structured JSON (what loadgen's
    /// `--latency-series` samples).
    #[must_use]
    pub fn metrics_json(&self) -> Value {
        let window = Self::window_json(&lock(&self.latency));
        json::object(vec![
            ("exposition", Value::from(self.metrics_exposition())),
            ("window", window),
            ("window_intervals", Value::from(self.config.window_intervals)),
            ("queue_depth", Value::from(self.queue.len())),
        ])
    }

    /// Prometheus-style text exposition of the service's counters,
    /// gauges, and per-endpoint latency summaries. Every latency family
    /// is emitted twice, labelled `view="cumulative"` (since start) and
    /// `view="window"` (the sliding window) — the two views disagree
    /// after a load shift, by design.
    #[must_use]
    pub fn metrics_exposition(&self) -> String {
        let mut prom = disparity_obs::export::PromText::new();
        let c = &self.counters;
        prom.type_line("disparity_requests_total", "counter");
        for (outcome, counter) in [
            ("received", &c.received),
            ("completed", &c.completed),
            ("overloaded", &c.overloaded),
            ("shutting_down", &c.shutting_down),
            ("rejected", &c.rejected),
            ("timeouts", &c.timeouts),
            ("errors", &c.errors),
            ("panics", &c.panics),
            ("quarantined", &c.quarantined),
        ] {
            prom.sample(
                "disparity_requests_total",
                &[("outcome", outcome)],
                i64::try_from(load(counter)).unwrap_or(i64::MAX),
            );
        }
        prom.type_line("disparity_cache_total", "counter");
        for (result, counter) in [("hit", &c.cache_hits), ("miss", &c.cache_misses)] {
            prom.sample(
                "disparity_cache_total",
                &[("result", result)],
                i64::try_from(load(counter)).unwrap_or(i64::MAX),
            );
        }
        prom.type_line("disparity_worker_respawns_total", "counter");
        prom.sample(
            "disparity_worker_respawns_total",
            &[],
            i64::try_from(load(&c.worker_respawns)).unwrap_or(i64::MAX),
        );
        for (name, value) in [
            ("disparity_queue_depth", self.queue.len()),
            ("disparity_workers_alive", self.workers_alive()),
            ("disparity_cached_graphs", self.cache.len()),
            ("disparity_quarantined_specs", self.quarantine.len()),
        ] {
            prom.type_line(name, "gauge");
            prom.sample(name, &[], i64::try_from(value).unwrap_or(i64::MAX));
        }
        let guard = lock(&self.latency);
        let mut endpoints: Vec<&&'static str> = guard.keys().collect();
        endpoints.sort();
        prom.type_line("disparity_request_latency_us", "summary");
        for endpoint in endpoints {
            let lat = &guard[*endpoint];
            for (view, s) in [
                ("cumulative", lat.cumulative.summary()),
                ("window", lat.window.summary()),
            ] {
                for (q, v) in [("0.5", s.p50), ("0.95", s.p95), ("0.99", s.p99)] {
                    prom.sample(
                        "disparity_request_latency_us",
                        &[("endpoint", endpoint), ("view", view), ("quantile", q)],
                        v,
                    );
                }
                prom.sample(
                    "disparity_request_latency_us_sum",
                    &[("endpoint", endpoint), ("view", view)],
                    s.sum,
                );
                prom.sample(
                    "disparity_request_latency_us_count",
                    &[("endpoint", endpoint), ("view", view)],
                    i64::try_from(s.count).unwrap_or(i64::MAX),
                );
            }
        }
        prom.finish()
    }

    /// Workers currently running (a gauge; a respawn in flight may
    /// briefly read one low).
    #[must_use]
    pub fn workers_alive(&self) -> usize {
        lock(&self.workers)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// The `health` payload: pool liveness, supervision and quarantine
    /// state. Everything a fleet probe needs, nothing request-scoped.
    #[must_use]
    pub fn health_json(&self) -> Value {
        json::object(vec![
            ("workers_configured", Value::from(self.config.workers.max(1))),
            ("workers_alive", Value::from(self.workers_alive())),
            (
                "worker_respawns",
                uint(load(&self.counters.worker_respawns)),
            ),
            ("panics", uint(load(&self.counters.panics))),
            ("quarantined_specs", Value::from(self.quarantine.len())),
            ("queue_depth", Value::from(self.queue.len())),
            ("draining", Value::Bool(self.queue.is_closed())),
        ])
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted message; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "opaque panic payload"
    }
}

fn uint(v: u64) -> Value {
    Value::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

/// Why a request did not produce an `ok` result.
enum Refusal {
    Timeout,
    DiagGate(String),
    Failed(String),
}

fn refusal_of(e: AnalysisError) -> Refusal {
    match e {
        AnalysisError::BudgetExhausted => Refusal::Timeout,
        other => Refusal::Failed(format!("analysis failed: {other}")),
    }
}

fn opt_refusal(e: OptError) -> Refusal {
    match e {
        OptError::Analysis(AnalysisError::BudgetExhausted) => Refusal::Timeout,
        other => Refusal::Failed(format!("optimize failed: {other}")),
    }
}

/// Replays the optimized system in the discrete-event simulator and
/// reports, per fusion task in the plan, the largest observed disparity
/// against the certified bound. Seeded from the request, so repeated
/// identical requests stay byte-identical.
fn sim_validate(
    entry: &GraphEntry,
    plan: &GlobalPlan,
    horizon_ms: u64,
    seed: u64,
) -> Result<Value, Refusal> {
    let horizon = disparity_model::time::Duration::from_millis(
        i64::try_from(horizon_ms).unwrap_or(i64::MAX),
    );
    let sim = Simulator::new(
        &entry.graph,
        SimConfig {
            horizon,
            exec_model: ExecutionTimeModel::Uniform,
            seed,
            warmup: disparity_model::time::Duration::from_nanos(horizon.as_nanos() / 5),
            record_trace: false,
            semantics: CommunicationSemantics::Implicit,
            fault: FaultPlan::none(),
        },
    );
    let outcome = sim
        .run()
        .map_err(|e| Refusal::Failed(format!("sim validation failed: {e}")))?;
    let checks = plan
        .predictions
        .iter()
        .map(|p| {
            let observed = entry
                .graph
                .find_task(&p.task)
                .and_then(|t| outcome.metrics.max_disparity(t));
            json::object(vec![
                ("task", Value::from(p.task.as_str())),
                (
                    "observed_ns",
                    observed.map_or(Value::Null, |d| Value::Int(d.as_nanos())),
                ),
                (
                    "within_bound",
                    observed.map_or(Value::Null, |d| Value::Bool(d <= p.after)),
                ),
            ])
        })
        .collect();
    Ok(json::object(vec![
        ("horizon_ms", uint(horizon_ms)),
        ("seed", uint(seed)),
        ("checks", Value::Array(checks)),
    ]))
}

impl From<AnalysisError> for Refusal {
    fn from(e: AnalysisError) -> Self {
        refusal_of(e)
    }
}

fn find_task(entry: &GraphEntry, name: &str) -> Result<disparity_model::ids::TaskId, Refusal> {
    entry
        .graph
        .find_task(name)
        .ok_or_else(|| Refusal::Failed(format!("unknown task {name:?}")))
}

/// Runs `body` with a budget hook derived from the optional deadline.
fn run_with_deadline<F>(deadline: Option<Instant>, body: F) -> Result<Value, Refusal>
where
    F: FnOnce(Option<&(dyn Fn() -> bool + Sync)>) -> Result<Value, Refusal>,
{
    match deadline {
        None => body(None),
        Some(deadline) => {
            let hook = move || Instant::now() < deadline;
            body(Some(&hook))
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
