//! Concurrency contract of the service: responses are byte-identical to
//! encoding a direct [`AnalysisEngine`] run (after peeling the
//! transport's `trace_id` stamp), identical specs share one cached
//! graph, and queue saturation loses no responses.
//!
//! Obs stays disabled here; the recorder-asserting shutdown test lives in
//! its own binary (the recorder is global per process).
//!
//! [`AnalysisEngine`]: disparity_core::engine::AnalysisEngine

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_rng::rngs::StdRng;
use disparity_sched::wcrt::response_times;
use disparity_service::proto::{
    encode_disparity_result, is_trace_id, response_line, split_trace, ResponseBody, Status,
};
use disparity_service::server::{serve, ServerHandle};
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

/// A seeded fusion workload (WATERS period bins) and its fusion sink.
fn seeded_workload(seed: u64) -> (CauseEffectGraph, TaskId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    (graph, sink)
}

/// The exact response line a correct server must produce for a disparity
/// request `{"id":<id>,"op":"disparity","task":<sink>,"spec":<spec>}`.
fn expected_line(graph: &CauseEffectGraph, sink: TaskId, id: i64) -> String {
    let rt = response_times(graph).expect("schedulable workload");
    let report = AnalysisEngine::new(graph, &rt)
        .worst_case_disparity(sink, AnalysisConfig::default())
        .expect("direct analysis succeeds");
    response_line(
        &Value::Int(id),
        Status::Ok,
        ResponseBody::Result(encode_disparity_result(graph, &report)),
    )
}

fn disparity_request(graph: &CauseEffectGraph, sink: TaskId, id: i64) -> String {
    let spec = SystemSpec::from_graph(graph);
    format!(
        "{{\"id\":{id},\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(graph.task(sink).name()),
        spec.to_json()
    )
}

/// Sends `lines` over one TCP connection, reads one response per line.
fn roundtrip(handle: &ServerHandle, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write newline");
    }
    stream.flush().expect("flush");
    let reader = BufReader::new(stream);
    reader
        .lines()
        .take(lines.len())
        .map(|l| l.expect("read response"))
        .collect()
}

fn start_server(config: ServiceConfig) -> ServerHandle {
    let service = Service::start(config);
    serve("127.0.0.1:0", service).expect("bind loopback")
}

/// Split a transport line into its pure body and its well-formed trace id.
fn peel(line: &str) -> (String, String) {
    let (pure, trace) = split_trace(line).expect("response carries a trace_id");
    assert!(is_trace_id(&trace), "malformed trace id: {trace}");
    (pure, trace)
}

#[test]
fn serial_responses_match_direct_engine_bytes() {
    let handle = start_server(ServiceConfig::default());
    for seed in [1u64, 7, 42, 1234] {
        let (graph, sink) = seeded_workload(seed);
        let want = expected_line(&graph, sink, i64::try_from(seed).unwrap());
        let got = roundtrip(
            &handle,
            &[disparity_request(&graph, sink, i64::try_from(seed).unwrap())],
        );
        assert_eq!(peel(&got[0]).0, want, "seed {seed}");
        // A second round over the now-cached graph must not change a byte.
        let again = roundtrip(
            &handle,
            &[disparity_request(&graph, sink, i64::try_from(seed).unwrap())],
        );
        assert_eq!(peel(&again[0]).0, want, "seed {seed} (cached)");
    }
    let service = handle.service();
    assert!(
        service
            .counters
            .cache_hits
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 4,
        "second rounds hit the cache"
    );
    handle.shutdown();
}

#[test]
fn concurrent_identical_specs_share_cache_and_bytes() {
    let handle = start_server(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let (graph, sink) = seeded_workload(99);
    let want = expected_line(&graph, sink, 5);
    let request = disparity_request(&graph, sink, 5);

    let responses: Vec<Vec<String>> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..8)
            .map(|_| {
                let handle = &handle;
                let request = request.clone();
                scope.spawn(move || roundtrip(handle, &[request]))
            })
            .collect();
        clients.into_iter().map(|c| c.join().unwrap()).collect()
    });
    let mut traces = std::collections::BTreeSet::new();
    for got in responses {
        let (pure, trace) = peel(&got[0]);
        assert_eq!(pure, want);
        traces.insert(trace);
    }
    assert_eq!(traces.len(), 8, "identical bodies, but each response has its own trace id");
    let service = handle.service();
    let hits = service
        .counters
        .cache_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let misses = service
        .counters
        .cache_misses
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(hits + misses, 8, "every request consulted the cache");
    assert!(hits >= 1, "identical specs produce cache hits (got {hits})");
    handle.shutdown();
}

#[test]
fn concurrent_distinct_specs_each_match_their_direct_run() {
    let handle = start_server(ServiceConfig {
        workers: 4,
        ..ServiceConfig::default()
    });
    let seeds: Vec<u64> = (10..18).collect();
    let results: Vec<(String, Vec<String>)> = std::thread::scope(|scope| {
        let clients: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let handle = &handle;
                scope.spawn(move || {
                    let (graph, sink) = seeded_workload(seed);
                    let id = i64::try_from(seed).unwrap();
                    let want = expected_line(&graph, sink, id);
                    let got = roundtrip(handle, &[disparity_request(&graph, sink, id)]);
                    (want, got)
                })
            })
            .collect();
        clients.into_iter().map(|c| c.join().unwrap()).collect()
    });
    for (want, got) in results {
        assert_eq!(peel(&got[0]).0, want);
    }
    handle.shutdown();
}

#[test]
fn queue_saturation_answers_every_request_exactly_once() {
    // One slow worker and a 2-deep queue: a burst must split into `ok`
    // (admitted) and `overloaded` (bounced), with zero lost or duplicated
    // responses.
    let handle = start_server(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    let n = 30;
    let lines: Vec<String> = (0..n)
        .map(|i| format!("{{\"id\":{i},\"op\":\"sleep\",\"millis\":15}}"))
        .collect();
    let responses = roundtrip(&handle, &lines);
    assert_eq!(responses.len(), n, "one response per request");

    let mut ids = Vec::new();
    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for line in &responses {
        let v = Value::parse(line).expect("response is valid JSON");
        ids.push(v.get("id").and_then(Value::as_i64).expect("id echoed"));
        match v.get("status").and_then(Value::as_str) {
            Some("ok") => ok += 1,
            Some("overloaded") => {
                overloaded += 1;
                assert_eq!(
                    v.get("error").and_then(Value::as_str),
                    Some("queue full"),
                    "overload is reported as such"
                );
            }
            other => panic!("unexpected status {other:?} in {line}"),
        }
    }
    ids.sort_unstable();
    assert_eq!(
        ids,
        (0..i64::try_from(n).unwrap()).collect::<Vec<_>>(),
        "every id answered exactly once"
    );
    assert!(ok >= 1, "admitted requests completed");
    assert!(overloaded >= 1, "admission control fired under the burst");

    let service = handle.service();
    assert_eq!(
        service
            .counters
            .overloaded
            .load(std::sync::atomic::Ordering::Relaxed),
        u64::try_from(overloaded).unwrap(),
        "overload counter matches observed responses"
    );
    handle.shutdown();
}

#[test]
fn soft_deadline_times_out_instead_of_hanging() {
    // deadline_ms: 0 expires before the engine starts; the request must
    // come back `timeout`, not `ok`.
    let handle = start_server(ServiceConfig::default());
    let (graph, sink) = seeded_workload(3);
    let spec = SystemSpec::from_graph(&graph);
    let line = format!(
        "{{\"id\":\"d\",\"op\":\"disparity\",\"task\":{},\"deadline_ms\":0,\"spec\":{}}}",
        Value::from(graph.task(sink).name()),
        spec.to_json()
    );
    let got = roundtrip(&handle, &[line]);
    let v = Value::parse(&got[0]).unwrap();
    assert_eq!(v.get("status").and_then(Value::as_str), Some("timeout"));
    handle.shutdown();
}

#[test]
fn stats_op_reports_counters_and_latency() {
    let handle = start_server(ServiceConfig::default());
    let (graph, sink) = seeded_workload(21);
    let _ = roundtrip(&handle, &[disparity_request(&graph, sink, 1)]);
    let got = roundtrip(&handle, &["{\"id\":2,\"op\":\"stats\"}".to_string()]);
    let v = Value::parse(&got[0]).unwrap();
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    let result = v.get("result").expect("stats payload");
    let counters = result.get("counters").expect("counters object");
    assert_eq!(counters.get("cache_misses").and_then(Value::as_i64), Some(1));
    assert!(result.get("queue_depth").is_some());
    let latency = result.get("latency_us").expect("latency object");
    let disparity = latency.get("disparity").expect("disparity endpoint histogram");
    assert_eq!(disparity.get("count").and_then(Value::as_i64), Some(1));
    assert!(disparity.get("p50_us").and_then(Value::as_i64).is_some());
    assert!(disparity.get("p99_us").and_then(Value::as_i64).is_some());
    handle.shutdown();
}

#[test]
fn malformed_and_unknown_inputs_answer_with_errors() {
    let handle = start_server(ServiceConfig::default());
    let (graph, sink) = seeded_workload(8);
    let spec = SystemSpec::from_graph(&graph);
    let lines = vec![
        "this is not json".to_string(),
        "{\"id\":1,\"op\":\"frobnicate\"}".to_string(),
        format!(
            "{{\"id\":2,\"op\":\"disparity\",\"task\":\"no_such_task\",\"spec\":{}}}",
            spec.to_json()
        ),
    ];
    let got = roundtrip(&handle, &lines);
    assert_eq!(got.len(), 3);
    for line in &got {
        let v = Value::parse(line).expect("error responses are valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert!(v.get("error").and_then(Value::as_str).is_some());
    }
    let _ = (graph, sink);
    handle.shutdown();
}
