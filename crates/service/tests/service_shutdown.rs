//! Graceful-shutdown contract: every accepted request gets a terminal
//! response, late arrivals are refused (never dropped), and the obs trace
//! recorded across the drain is well-nested (the golden checker from the
//! observability suite).
//!
//! Lives in its own test binary because the obs recorder is global per
//! process.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::channel;

use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_rng::rngs::StdRng;
use disparity_service::server::serve;
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

fn seeded_workload(seed: u64) -> (CauseEffectGraph, TaskId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    (graph, sink)
}

/// One exported trace event, reduced to what the nesting check needs.
struct Event {
    name: String,
    tid: i64,
    start_ns: i64,
    end_ns: i64,
}

fn events_of(trace: &Value) -> Vec<Event> {
    trace
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array")
        .iter()
        .map(|e| {
            let args = e.get("args").expect("args object");
            let start_ns = args.get("start_ns").and_then(Value::as_i64).unwrap();
            let dur_ns = args.get("dur_ns").and_then(Value::as_i64).unwrap();
            assert!(dur_ns >= 0, "span durations are non-negative");
            Event {
                name: e.get("name").and_then(Value::as_str).unwrap().to_string(),
                tid: e.get("tid").and_then(Value::as_i64).unwrap(),
                start_ns,
                end_ns: start_ns + dur_ns,
            }
        })
        .collect()
}

/// Within one thread, any two spans must either nest or be disjoint —
/// partial overlap would mean the RAII guards closed out of order.
fn assert_well_nested(events: &[Event]) {
    for (i, a) in events.iter().enumerate() {
        for b in &events[i + 1..] {
            if a.tid != b.tid {
                continue;
            }
            let disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
            let a_in_b = b.start_ns <= a.start_ns && a.end_ns <= b.end_ns;
            let b_in_a = a.start_ns <= b.start_ns && b.end_ns <= a.end_ns;
            assert!(
                disjoint || a_in_b || b_in_a,
                "spans `{}` [{}, {}] and `{}` [{}, {}] partially overlap on tid {}",
                a.name,
                a.start_ns,
                a.end_ns,
                b.name,
                b.start_ns,
                b.end_ns,
                a.tid
            );
        }
    }
}

#[test]
fn drain_answers_every_accepted_request_and_trace_is_well_nested() {
    disparity_obs::reset();
    disparity_obs::enable();

    let service = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    let (tx, shutdown_signal) = channel::<()>();
    service.set_shutdown_hook(move || {
        let _ = tx.send(());
    });
    let handle = serve("127.0.0.1:0", service).expect("bind loopback");

    // A busy client: slow sleeps to keep the queue non-empty at shutdown,
    // plus real analysis requests so engine spans land in the trace.
    let (graph, sink) = seeded_workload(5);
    let spec = SystemSpec::from_graph(&graph);
    let mut lines: Vec<String> = (0..6)
        .map(|i| format!("{{\"id\":{i},\"op\":\"sleep\",\"millis\":30}}"))
        .collect();
    lines.push(format!(
        "{{\"id\":100,\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(graph.task(sink).name()),
        spec.to_json()
    ));
    lines.push("{\"id\":101,\"op\":\"ping\"}".to_string());

    let mut busy = TcpStream::connect(handle.addr()).expect("connect");
    for line in &lines {
        busy.write_all(line.as_bytes()).expect("write");
        busy.write_all(b"\n").expect("newline");
    }
    busy.flush().expect("flush");
    let busy_reader = std::thread::spawn(move || {
        // Read to EOF: the drain closes the connection after the last
        // reply, so collecting until EOF sees every terminal response.
        BufReader::new(busy)
            .lines()
            .map_while(Result::ok)
            .collect::<Vec<String>>()
    });

    // A second client asks for shutdown mid-burst.
    let controller = TcpStream::connect(handle.addr()).expect("connect");
    {
        let mut c = &controller;
        c.write_all(b"{\"id\":\"ctl\",\"op\":\"shutdown\"}\n")
            .expect("write shutdown");
        c.flush().expect("flush");
    }
    let ctl_reader = std::thread::spawn(move || {
        BufReader::new(controller)
            .lines()
            .map_while(Result::ok)
            .collect::<Vec<String>>()
    });

    // Run the same drain sequence the serve binary runs.
    shutdown_signal.recv().expect("shutdown op fires the hook");
    handle.shutdown();

    let busy_replies = busy_reader.join().expect("busy client finishes");
    let ctl_replies = ctl_reader.join().expect("controller finishes");

    // The controller got its shutdown ack.
    assert_eq!(ctl_replies.len(), 1);
    let ack = Value::parse(&ctl_replies[0]).expect("ack parses");
    assert_eq!(ack.get("status").and_then(Value::as_str), Some("ok"));

    // Every busy-client request got exactly one terminal response, and
    // each id appears exactly once.
    assert_eq!(busy_replies.len(), lines.len(), "no lost or extra replies");
    let mut ids: Vec<i64> = busy_replies
        .iter()
        .map(|l| {
            let v = Value::parse(l).expect("reply parses");
            let status = v.get("status").and_then(Value::as_str).expect("status");
            assert!(
                ["ok", "shutting_down", "overloaded", "timeout", "error"].contains(&status),
                "terminal status, got {status}"
            );
            v.get("id").and_then(Value::as_i64).expect("id echoed")
        })
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 100, 101]);

    // The disparity request either completed or was refused while
    // draining — never silently dropped.
    let disparity_status = busy_replies
        .iter()
        .map(|l| Value::parse(l).unwrap())
        .find(|v| v.get("id").and_then(Value::as_i64) == Some(100))
        .and_then(|v| v.get("status").and_then(Value::as_str).map(String::from))
        .expect("disparity reply present");
    assert!(["ok", "shutting_down"].contains(&disparity_status.as_str()));

    // The trace recorded across the drain is well-nested per thread.
    let mut path = std::env::temp_dir();
    path.push(format!(
        "disparity-service-shutdown-{}.trace.json",
        std::process::id()
    ));
    disparity_obs::export::write_chrome_trace(&path).expect("trace export");
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let trace = Value::parse(&text).expect("trace parses");
    let events = events_of(&trace);
    assert!(
        events.iter().any(|e| e.name == "service.request"),
        "request spans recorded"
    );
    assert_well_nested(&events);
    let _ = std::fs::remove_file(&path);
    disparity_obs::reset();
    disparity_obs::disable();
}
