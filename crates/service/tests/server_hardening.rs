//! Wire-level hardening of the TCP transport: oversized lines, hostile
//! bytes, slow-loris dribbles, truncated requests, and clients that
//! vanish mid-conversation must never kill the server or leak queue
//! capacity.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use disparity_model::json::Value;
use disparity_service::server::{serve_with, ServeOptions, ServerHandle};
use disparity_service::service::{Service, ServiceConfig};

fn start_server(config: ServiceConfig, options: ServeOptions) -> ServerHandle {
    let service = Service::start(config);
    serve_with("127.0.0.1:0", service, options).expect("bind loopback")
}

fn read_line(stream: &mut TcpStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    line.trim_end().to_string()
}

fn parsed(line: &str) -> Value {
    Value::parse(line).expect("response is valid JSON")
}

#[test]
fn oversized_line_is_rejected_and_connection_survives() {
    let handle = start_server(
        ServiceConfig::default(),
        ServeOptions {
            max_request_bytes: 1024,
            ..ServeOptions::default()
        },
    );
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // 8 KiB of almost-JSON on one line: way past the 1 KiB cap.
    let huge = format!("{{\"id\":1,\"op\":\"ping\",\"pad\":\"{}\"}}\n", "x".repeat(8192));
    stream.write_all(huge.as_bytes()).expect("write oversized");
    let v = parsed(&read_line(&mut stream));
    assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    assert!(
        v.get("error").and_then(Value::as_str).unwrap().contains("1024-byte cap"),
        "error names the cap: {v:?}"
    );
    // Same connection, next request: alive and well.
    stream.write_all(b"{\"id\":2,\"op\":\"ping\"}\n").expect("write ping");
    let v = parsed(&read_line(&mut stream));
    assert_eq!(v.get("id").and_then(Value::as_i64), Some(2));
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    handle.shutdown();
}

#[test]
fn invalid_utf8_gets_an_error_and_connection_survives() {
    let handle = start_server(ServiceConfig::default(), ServeOptions::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(b"\xff\xfe{\"id\":1}\x80\n")
        .expect("write garbage");
    let v = parsed(&read_line(&mut stream));
    assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    stream.write_all(b"{\"id\":2,\"op\":\"ping\"}\n").expect("write ping");
    let v = parsed(&read_line(&mut stream));
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    handle.shutdown();
}

#[test]
fn slow_loris_line_hits_the_read_deadline() {
    let handle = start_server(
        ServiceConfig::default(),
        ServeOptions {
            read_deadline: Some(Duration::from_millis(400)),
            ..ServeOptions::default()
        },
    );
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // First bytes of a request, then silence: never a newline.
    stream.write_all(b"{\"id\":1,\"op\":").expect("write partial");
    let start = Instant::now();
    let line = read_line(&mut stream);
    let v = parsed(&line);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    assert!(
        v.get("error").and_then(Value::as_str).unwrap().contains("400ms"),
        "error names the deadline: {line}"
    );
    assert!(
        start.elapsed() >= Duration::from_millis(300),
        "deadline did not fire early"
    );
    // The server closed the connection: further reads reach EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to EOF");
    assert!(rest.is_empty(), "no further data after the deadline error");
    handle.shutdown();
}

#[test]
fn partial_line_at_eof_is_dropped_not_parsed() {
    let handle = start_server(ServiceConfig::default(), ServeOptions::default());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // A complete request plus a truncated one, then half-close: the
    // finished line is answered, the unterminated tail is discarded.
    stream
        .write_all(b"{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"ping\"}")
        .expect("write");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut all = String::new();
    stream.read_to_string(&mut all).expect("read to EOF");
    let lines: Vec<&str> = all.lines().collect();
    assert_eq!(lines.len(), 1, "exactly the finished request is answered: {all:?}");
    let v = parsed(lines[0]);
    assert_eq!(v.get("id").and_then(Value::as_i64), Some(1));
    handle.shutdown();
}

#[test]
fn vanishing_clients_leak_no_queue_capacity() {
    // One slow worker, 2-deep queue. Clients enqueue sleeps and vanish
    // before reading; their replies hit dead sockets. If any code path
    // leaked queue slots the later rounds would see nothing but
    // `overloaded` — instead a patient client must still get `ok`.
    let handle = start_server(
        ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServiceConfig::default()
        },
        ServeOptions::default(),
    );
    for round in 0..5 {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .write_all(b"{\"id\":1,\"op\":\"sleep\",\"millis\":10}\n{\"id\":2,\"op\":\"sleep\",\"millis\":10}\n")
            .expect("write");
        // Drop without reading a single byte — mid-conversation reset.
        drop(stream);
        let _ = round;
    }
    // Wait until all 10 dropped requests are fully accounted for —
    // submitted by their (asynchronous) reader threads AND either
    // completed or bounced — so none race with the probe below.
    let service = handle.service();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let c = &service.counters;
        let received = c.received.load(std::sync::atomic::Ordering::Relaxed);
        let settled = c.completed.load(std::sync::atomic::Ordering::Relaxed)
            + c.overloaded.load(std::sync::atomic::Ordering::Relaxed);
        if received >= 10 && settled == received && service.queue_depth() == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "dropped jobs never drained");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Full capacity is available again: both of these are admitted.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(b"{\"id\":10,\"op\":\"sleep\",\"millis\":1}\n{\"id\":11,\"op\":\"sleep\",\"millis\":1}\n")
        .expect("write");
    for _ in 0..2 {
        let v = parsed(&read_line(&mut stream));
        assert_eq!(
            v.get("status").and_then(Value::as_str),
            Some("ok"),
            "no capacity leaked by vanished clients"
        );
    }
    handle.shutdown();
}
