//! Byte-identity contract of the incremental `patch` op: a patch against
//! a cached base must answer with **exactly** the bytes a full-spec
//! `disparity` request on the edited spec would produce — success and
//! failure alike — whether the answer comes from the delta rebase, the
//! cold-build fallback, the derived-entry cache, or the patch memo.
//!
//! Everything here drives [`Service::process`] directly (no transport),
//! so the comparisons are on raw response lines with no `trace_id` to
//! peel.
//!
//! [`Service::process`]: disparity_service::service::Service::process

use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_rng::rngs::StdRng;
use disparity_sched::wcrt::response_times;
use disparity_service::proto::{
    encode_disparity_result, response_line, Request, ResponseBody, Status,
};
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

/// A seeded fusion workload (WATERS period bins) and its fusion sink.
fn seeded_workload(seed: u64) -> (CauseEffectGraph, TaskId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    (graph, sink)
}

fn process(service: &Service, line: &str) -> String {
    let request = Request::parse(line).expect("request parses");
    service.process(&request)
}

fn disparity_line(spec: &SystemSpec, task: &str, id: i64) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(task),
        spec.to_json()
    )
}

fn patch_line(base: u64, edits_json: &str, task: &str, id: i64) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"patch\",\"base\":\"{base:016x}\",\"edits\":[{edits_json}],\"task\":{}}}",
        Value::from(task)
    )
}

/// The exact success line for a disparity answer on `spec`, from a
/// direct engine run.
fn direct_line(spec: &SystemSpec, task: &str, id: i64) -> String {
    let graph = spec.build().expect("edited spec builds");
    let sink = graph.find_task(task).expect("task in edited spec");
    let rt = response_times(&graph).expect("edited spec schedulable");
    let report = AnalysisEngine::new(&graph, &rt)
        .worst_case_disparity(sink, AnalysisConfig::default())
        .expect("direct analysis succeeds");
    response_line(
        &Value::Int(id),
        Status::Ok,
        ResponseBody::Result(encode_disparity_result(&graph, &report)),
    )
}

fn counter(service: &Service, name: &str) -> i64 {
    let stats = process(service, "{\"id\":99,\"op\":\"stats\"}");
    Value::parse(&stats)
        .expect("stats parse")
        .get("result")
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_i64)
        .unwrap_or(-1)
}

/// Warms the base spec into the cache and returns (spec, task name,
/// base hash, a shrunk-WCET edit JSON, the edited spec).
fn warmed_base(service: &Service) -> (SystemSpec, String, u64, String, SystemSpec) {
    let (graph, sink) = seeded_workload(7);
    let spec = SystemSpec::from_graph(&graph);
    let task = graph.task(sink).name().to_string();
    let base = spec.canonical_hash();

    let warm = process(service, &disparity_line(&spec, &task, 1));
    assert!(warm.contains("\"status\":\"ok\""), "warm request succeeds: {warm}");

    // Shrink the WCET of a computation task (stays ≥ BCET, so the edit
    // is valid and the system stays schedulable).
    let victim = spec
        .tasks
        .iter()
        .find(|t| t.wcet.as_nanos() > t.bcet.as_nanos() + 1)
        .expect("workload has a shrinkable task");
    let new_wcet = (victim.bcet.as_nanos() + victim.wcet.as_nanos()) / 2;
    let edit = format!(
        "{{\"kind\":\"set_wcet\",\"task\":{},\"wcet\":{new_wcet}}}",
        Value::from(victim.name.as_str())
    );
    let mut edited = spec.clone();
    let victim_name = victim.name.clone();
    for t in &mut edited.tasks {
        if t.name == victim_name {
            t.wcet = disparity_model::time::Duration::from_nanos(new_wcet);
        }
    }
    (spec, task, base, edit, edited)
}

#[test]
fn patch_answer_is_byte_identical_to_cold_disparity_on_the_edited_spec() {
    let service = Service::start(ServiceConfig::default());
    let (_spec, task, base, edit, edited) = warmed_base(&service);

    let got = process(&service, &patch_line(base, &edit, &task, 2));
    assert_eq!(got, direct_line(&edited, &task, 2), "delta-derived bytes");
    assert_eq!(counter(&service, "patched"), 1, "one derived entry");

    // Same edit again: answered from the patch memo, still byte-equal.
    let again = process(&service, &patch_line(base, &edit, &task, 3));
    assert_eq!(again, direct_line(&edited, &task, 3), "memoized bytes");
    assert!(counter(&service, "patch_memo_hits") >= 1, "memo was hit");
    assert_eq!(counter(&service, "patched"), 1, "no second derive");

    service.shutdown();
}

#[test]
fn patch_with_an_edit_chain_matches_cold_on_the_final_spec() {
    let service = Service::start(ServiceConfig::default());
    let (spec, task, base, edit, edited) = warmed_base(&service);

    // Chain a period change on top of the WCET cut: the second edit
    // rebuilds the graph, so the rebase walks two different dirty paths.
    let victim = spec
        .tasks
        .iter()
        .find(|t| t.wcet.as_nanos() > 0)
        .expect("computation task");
    let new_period = victim.period.as_nanos() * 2;
    let edits = format!(
        "{edit},{{\"kind\":\"set_period\",\"task\":{},\"period\":{new_period}}}",
        Value::from(victim.name.as_str())
    );
    let mut final_spec = edited.clone();
    let victim_name = victim.name.clone();
    for t in &mut final_spec.tasks {
        if t.name == victim_name {
            t.period = disparity_model::time::Duration::from_nanos(new_period);
        }
    }

    let got = process(&service, &patch_line(base, &edits, &task, 4));
    let want = direct_line(&final_spec, &task, 4);
    assert_eq!(got, want, "two-edit patch matches cold pipeline");

    service.shutdown();
}

#[test]
fn patch_against_an_unknown_base_is_refused() {
    let service = Service::start(ServiceConfig::default());
    let line = patch_line(
        0xdead_beef_dead_beef,
        "{\"kind\":\"set_wcet\",\"task\":\"x\",\"wcet\":1}",
        "x",
        5,
    );
    let got = process(&service, &line);
    assert!(got.contains("\"status\":\"error\""), "refused: {got}");
    assert!(got.contains("unknown base deadbeefdeadbeef"), "names the base: {got}");
    assert!(got.contains("send the full spec once first"), "explains the fix: {got}");
    service.shutdown();
}

#[test]
fn patch_with_an_invalid_edit_names_the_offending_index() {
    let service = Service::start(ServiceConfig::default());
    let (spec, task, base, _edit, _edited) = warmed_base(&service);

    // WCET below BCET violates the edit's invariant at apply time.
    let victim = spec
        .tasks
        .iter()
        .find(|t| t.bcet.as_nanos() > 1)
        .expect("task with a positive BCET");
    let bad = format!(
        "{{\"kind\":\"set_wcet\",\"task\":{},\"wcet\":{}}}",
        Value::from(victim.name.as_str()),
        victim.bcet.as_nanos() - 1
    );
    let got = process(&service, &patch_line(base, &bad, &task, 6));
    assert!(got.contains("\"status\":\"error\""), "refused: {got}");
    assert!(got.contains("bad edit [0]"), "names the index: {got}");
    service.shutdown();
}

#[test]
fn unschedulable_derived_spec_fails_with_the_same_bytes_as_a_full_request() {
    let service = Service::start(ServiceConfig::default());
    let (spec, task, base, _edit, _edited) = warmed_base(&service);

    // Blow one WCET past its period: the derived system cannot be
    // admitted and the patch must answer with the cold path's exact
    // failure text (here the WCRT stage's utilization check, which runs
    // before the deadline-miss verdict).
    let victim = spec
        .tasks
        .iter()
        .find(|t| t.wcet.as_nanos() > 0)
        .expect("computation task");
    let huge = victim.period.as_nanos() * 10;
    let edit = format!(
        "{{\"kind\":\"set_wcet\",\"task\":{},\"wcet\":{huge}}}",
        Value::from(victim.name.as_str())
    );
    let mut broken = spec.clone();
    let victim_name = victim.name.clone();
    for t in &mut broken.tasks {
        if t.name == victim_name {
            t.wcet = disparity_model::time::Duration::from_nanos(huge);
        }
    }

    let via_patch = process(&service, &patch_line(base, &edit, &task, 7));
    let via_full_spec = process(&service, &disparity_line(&broken, &task, 7));
    assert_eq!(
        via_patch, via_full_spec,
        "failure bytes match the full-spec path"
    );
    assert!(
        via_patch.contains("\"status\":\"error\"")
            && (via_patch.contains("unschedulable") || via_patch.contains("overloaded")),
        "names the admission failure: {via_patch}"
    );
    service.shutdown();
}

#[test]
fn deadline_missing_derived_spec_pins_the_unschedulable_admission_text() {
    use disparity_model::spec::{ChannelSpec, EcuSpec, TaskEntry};
    use disparity_model::time::Duration;

    // Handcrafted so the edit lands between over-utilization and a
    // clean schedule: with `lo`'s WCET at 7 ms, ecu1 runs at 98.3%
    // utilization but `lo`'s WCRT fixes at 15 ms > its 12 ms period —
    // the admission failure is the deadline-miss verdict, not the WCRT
    // stage's utilization check.
    let ms = |v: i64| Duration::from_millis(v);
    let spec = SystemSpec {
        ecus: vec![EcuSpec::processor("ecu1")],
        tasks: vec![
            TaskEntry::stimulus("s1", ms(10)),
            TaskEntry::computation("hi", ms(10), ms(1), ms(4), "ecu1"),
            TaskEntry::computation("lo", ms(12), ms(1), ms(5), "ecu1"),
        ],
        channels: vec![
            ChannelSpec::register("s1", "hi"),
            ChannelSpec::register("hi", "lo"),
        ],
    };
    let base = spec.canonical_hash();

    let service = Service::start(ServiceConfig::default());
    let warm = process(&service, &disparity_line(&spec, "lo", 1));
    assert!(warm.contains("\"status\":\"ok\""), "base admits: {warm}");

    let edit = "{\"kind\":\"set_wcet\",\"task\":\"lo\",\"wcet\":7000000}";
    let mut broken = spec.clone();
    broken.tasks[2].wcet = ms(7);

    let via_patch = process(&service, &patch_line(base, edit, "lo", 2));
    let via_full_spec = process(&service, &disparity_line(&broken, "lo", 2));
    assert_eq!(via_patch, via_full_spec, "failure bytes match");
    assert!(
        via_patch.contains("unschedulable: 1 task(s) miss their deadline"),
        "pins the admission text: {via_patch}"
    );
    service.shutdown();
}

#[test]
fn derived_entries_are_cached_and_usable_as_a_new_base() {
    let service = Service::start(ServiceConfig::default());
    let (_spec, task, base, edit, edited) = warmed_base(&service);

    // Derive once via patch, then query the edited spec's hash directly:
    // the derived entry must serve as a base for a follow-up patch.
    let first = process(&service, &patch_line(base, &edit, &task, 8));
    assert!(first.contains("\"status\":\"ok\""), "derive succeeds: {first}");

    let derived_base = edited.canonical_hash();
    let victim = edited
        .tasks
        .iter()
        .find(|t| t.wcet.as_nanos() > t.bcet.as_nanos() + 1)
        .expect("still a shrinkable task");
    let newer = (victim.bcet.as_nanos() + victim.wcet.as_nanos()) / 2;
    let second_edit = format!(
        "{{\"kind\":\"set_wcet\",\"task\":{},\"wcet\":{newer}}}",
        Value::from(victim.name.as_str())
    );
    let mut twice_edited = edited.clone();
    let victim_name = victim.name.clone();
    for t in &mut twice_edited.tasks {
        if t.name == victim_name {
            t.wcet = disparity_model::time::Duration::from_nanos(newer);
        }
    }

    let got = process(&service, &patch_line(derived_base, &second_edit, &task, 9));
    assert_eq!(
        got,
        direct_line(&twice_edited, &task, 9),
        "stacked patch rebases from the derived entry"
    );
    service.shutdown();
}
