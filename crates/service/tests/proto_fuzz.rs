//! Deterministic protocol fuzzing: seeded byte mutations of valid NDJSON
//! requests must never panic the service — every non-blank line is
//! answered (a parse error is an answer) or the connection closes
//! cleanly, and the worker pool survives untouched.
//!
//! Determinism: all randomness flows from fixed `StdRng` seeds
//! (xoshiro256**), so a failure here reproduces byte-for-byte. Crashing
//! inputs graduate into `tests/corpus/` (see its README) and are
//! replayed by `corpus_replays_cleanly`.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;

use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_rng::rngs::StdRng;
use disparity_rng::Rng;
use disparity_service::proto::{Op, Request};
use disparity_service::server::{run_batch, serve_with, ServeOptions};
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

/// Valid request lines the mutator starts from: every op family except
/// the ones that stall or stop the service (`sleep`, `shutdown`,
/// `panic`), which the mutator also filters out post-mutation.
fn base_lines() -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(17);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    let task = Value::from(graph.task(sink).name());
    let spec = SystemSpec::from_graph(&graph).to_json();
    vec![
        "{\"id\":1,\"op\":\"ping\"}".to_string(),
        "{\"id\":\"fuzz\",\"op\":\"stats\"}".to_string(),
        "{\"id\":null,\"op\":\"health\"}".to_string(),
        "{\"id\":2,\"op\":\"ping\",\"deadline_ms\":5}".to_string(),
        format!("{{\"id\":3,\"op\":\"disparity\",\"task\":{task},\"spec\":{spec}}}"),
        format!("{{\"id\":4,\"op\":\"backward\",\"task\":{task},\"spec\":{spec}}}"),
        format!("{{\"id\":5,\"op\":\"buffer\",\"spec\":{spec}}}"),
    ]
}

/// Applies 1–4 random byte-level mutations: flips, insertions,
/// deletions, truncations, slice duplications, and random overwrites.
fn mutate(rng: &mut StdRng, base: &str) -> Vec<u8> {
    let mut bytes = base.as_bytes().to_vec();
    let n_mutations = rng.gen_range(1..=4u64);
    for _ in 0..n_mutations {
        if bytes.is_empty() {
            bytes.push(b'{');
        }
        let len = bytes.len();
        match rng.gen_range(0..6u64) {
            0 => {
                let i = rng.gen_range(0..len as u64) as usize;
                bytes[i] ^= (rng.gen_range(1..=255u64)) as u8;
            }
            1 => {
                let i = rng.gen_range(0..=len as u64) as usize;
                bytes.insert(i, (rng.gen_range(0..=255u64)) as u8);
            }
            2 => {
                let i = rng.gen_range(0..len as u64) as usize;
                let cut = rng.gen_range(1..=16u64) as usize;
                bytes.drain(i..(i + cut).min(len));
            }
            3 => {
                let i = rng.gen_range(0..=len as u64) as usize;
                bytes.truncate(i);
            }
            4 => {
                let i = rng.gen_range(0..len as u64) as usize;
                let span = rng.gen_range(1..=32u64) as usize;
                let slice: Vec<u8> = bytes[i..(i + span).min(len)].to_vec();
                let at = rng.gen_range(0..=bytes.len() as u64) as usize;
                for (k, b) in slice.into_iter().enumerate() {
                    bytes.insert(at + k, b);
                }
            }
            _ => {
                let i = rng.gen_range(0..len as u64) as usize;
                let span = (rng.gen_range(1..=8u64) as usize).min(len - i);
                for b in &mut bytes[i..i + span] {
                    *b = (rng.gen_range(0..=255u64)) as u8;
                }
            }
        }
        if bytes.len() > 4096 {
            bytes.truncate(4096);
        }
    }
    bytes
}

/// `true` when the (lossily decoded) line parses to an op that would
/// stall the fuzz run or stop the service — those ops have their own
/// dedicated tests; fuzzing is about hostile bytes, not valid control
/// requests.
fn is_control_op(bytes: &[u8]) -> bool {
    let text = String::from_utf8_lossy(bytes);
    match Request::parse(&text) {
        Ok(req) => matches!(
            req.op,
            Op::Sleep { .. } | Op::Shutdown | Op::Panic { .. }
        ),
        Err(_) => false,
    }
}

fn assert_batch_survives(service: &Arc<Service>, input: &[u8], context: &str) {
    let mut out = Vec::new();
    let answered =
        run_batch(service, &mut &input[..], &mut out).unwrap_or_else(|e| {
            panic!("batch I/O must not fail ({context}): {e}");
        });
    let text = String::from_utf8(out).expect("responses are valid UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), answered, "one response line per answer ({context})");
    for line in lines {
        let v = Value::parse(line)
            .unwrap_or_else(|e| panic!("response must be valid JSON ({context}): {e} in {line}"));
        assert!(
            v.get("status").and_then(Value::as_str).is_some(),
            "response carries a status ({context}): {line}"
        );
    }
}

#[test]
fn ten_thousand_seeded_mutations_never_panic_the_service() {
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let bases = base_lines();
    let mut rng = StdRng::seed_from_u64(0xF022_DEAD_BEEF);
    const ITERATIONS: usize = 10_000;
    const CHUNK: usize = 500;
    let mut produced = 0usize;
    let mut skipped = 0usize;
    while produced + skipped < ITERATIONS {
        let mut input: Vec<u8> = Vec::new();
        for _ in 0..CHUNK {
            if produced + skipped >= ITERATIONS {
                break;
            }
            let base = &bases[rng.gen_range(0..bases.len() as u64) as usize];
            let mutant = mutate(&mut rng, base);
            if is_control_op(&mutant) {
                skipped += 1;
                continue;
            }
            input.extend_from_slice(&mutant);
            input.push(b'\n');
            produced += 1;
        }
        assert_batch_survives(&service, &input, &format!("chunk ending at {produced}"));
    }
    assert!(
        skipped < ITERATIONS / 100,
        "mutations almost never produce valid control ops (got {skipped})"
    );
    // The pool survived all of it.
    assert_eq!(service.workers_alive(), 2, "fuzzing never killed a worker");
    assert_batch_survives(&service, b"{\"id\":\"post\",\"op\":\"ping\"}\n", "post-fuzz ping");
    service.shutdown();
}

#[test]
fn corpus_replays_cleanly() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let service = Service::start(ServiceConfig::default());
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(&corpus).expect("corpus dir exists") {
        let path = entry.expect("dir entry").path();
        let is_input = matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("txt" | "bin")
        );
        if !is_input {
            continue;
        }
        let bytes = std::fs::read(&path).expect("read corpus file");
        assert_batch_survives(&service, &bytes, &path.display().to_string());
        replayed += 1;
    }
    assert!(replayed >= 3, "corpus files are present and replayed");
    assert_eq!(service.workers_alive(), 4, "corpus never killed a worker");
    service.shutdown();
}

#[test]
fn seeded_tcp_garbage_leaves_the_server_healthy() {
    let service = Service::start(ServiceConfig::default());
    let handle = serve_with("127.0.0.1:0", service, ServeOptions::default())
        .expect("bind loopback");
    let mut rng = StdRng::seed_from_u64(0xBAD_B17E5);
    for conn in 0..50 {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        let n = rng.gen_range(1..=256u64) as usize;
        let mut junk: Vec<u8> = (0..n).map(|_| (rng.gen_range(0..=255u64)) as u8).collect();
        if conn % 2 == 0 {
            junk.push(b'\n');
        }
        stream.write_all(&junk).expect("write junk");
        stream.shutdown(Shutdown::Write).expect("half-close");
        // Whatever comes back (error responses or nothing), the server
        // must close our side cleanly rather than wedge or die.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
    // Still serving, pool intact.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(b"{\"id\":\"alive\",\"op\":\"ping\"}\n").expect("write ping");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let v = Value::parse(response.trim()).expect("valid JSON response");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(handle.service().workers_alive(), 4);
    handle.shutdown();
}
