//! Contract of the `optimize` op: the response is byte-identical to a
//! direct [`disparity_opt`] run on the same spec (the encoder is pure),
//! the predicted bounds in it agree with a cold re-analysis of the
//! plan-applied spec, the optimized spec lands in the cache under the
//! returned `optimized_spec_hash`, and the diag gate admits the
//! optimized spec of a clean base (satellite: optimizing a clean system
//! must not introduce D007 findings).
//!
//! Everything drives [`Service::process`] directly (no transport), so
//! comparisons are raw response lines with no `trace_id` to peel.
//!
//! [`Service::process`]: disparity_service::service::Service::process

use disparity_core::delta::AnalyzedSystem;
use disparity_core::disparity::AnalysisConfig;
use disparity_model::edit::apply_all;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_opt::{
    optimize_analyzed, BackendChoice, BufferBudget, PlanRequest,
};
use disparity_rng::rngs::StdRng;
use disparity_service::proto::{
    encode_optimize_result, response_line, Request, ResponseBody, Status,
};
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

fn seeded_workload(seed: u64) -> CauseEffectGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates")
}

fn process(service: &Service, line: &str) -> String {
    let request = Request::parse(line).expect("request parses");
    service.process(&request)
}

fn optimize_line(spec: &SystemSpec, budget: usize, seed: u64, id: i64) -> String {
    format!(
        "{{\"id\":{id},\"op\":\"optimize\",\"budget_slots\":{budget},\"seed\":{seed},\"spec\":{}}}",
        spec.to_json()
    )
}

/// The exact success line a direct optimizer run predicts.
fn direct_line(spec: &SystemSpec, budget: usize, seed: u64, id: i64) -> String {
    let base = AnalyzedSystem::analyze(spec, AnalysisConfig::default()).expect("base analyzes");
    let mut request = PlanRequest::with_budget(BufferBudget::slots(budget));
    request.seed = seed;
    let plan = optimize_analyzed(&base, &request, BackendChoice::Auto).expect("plan");
    let mut opt_spec = spec.clone();
    apply_all(&mut opt_spec, &plan.edits()).expect("plan edits apply");
    response_line(
        &Value::Int(id),
        Status::Ok,
        ResponseBody::Result(encode_optimize_result(&plan, opt_spec.canonical_hash(), None)),
    )
}

fn counter(service: &Service, name: &str) -> i64 {
    let stats = process(service, "{\"id\":99,\"op\":\"stats\"}");
    Value::parse(&stats)
        .expect("stats parse")
        .get("result")
        .and_then(|r| r.get("counters"))
        .and_then(|c| c.get(name))
        .and_then(Value::as_i64)
        .unwrap_or(-1)
}

fn result_of(line: &str) -> Value {
    let v = Value::parse(line).expect("response parses");
    assert_eq!(
        v.get("status").and_then(Value::as_str),
        Some("ok"),
        "ok response: {line}"
    );
    v.get("result").expect("result present").clone()
}

#[test]
fn optimize_answer_is_byte_identical_to_a_direct_run_and_deterministic() {
    let service = Service::start(ServiceConfig::default());
    let spec = SystemSpec::from_graph(&seeded_workload(7));

    let got = process(&service, &optimize_line(&spec, 4, 11, 2));
    assert_eq!(got, direct_line(&spec, 4, 11, 2), "optimize bytes");

    // Repeating the request must reproduce the same bytes (modulo id).
    let again = process(&service, &optimize_line(&spec, 4, 11, 3));
    assert_eq!(again, direct_line(&spec, 4, 11, 3), "deterministic replay");

    assert_eq!(counter(&service, "optimized"), 2, "both requests planned");
    assert!(
        counter(&service, "opt_delta_scored") + counter(&service, "opt_cold_scored") > 0,
        "search effort was accounted"
    );
    service.shutdown();
}

#[test]
fn optimize_predictions_match_cold_reanalysis_of_the_returned_plan() {
    let service = Service::start(ServiceConfig::default());
    let graph = seeded_workload(3);
    let spec = SystemSpec::from_graph(&graph);

    let result = result_of(&process(&service, &optimize_line(&spec, 4, 0, 1)));

    // Re-apply the returned assignments by hand and re-analyze cold.
    let mut opt_graph = graph.clone();
    let assignments = result
        .get("assignments")
        .and_then(Value::as_array)
        .expect("assignments array");
    for a in assignments {
        let from = a.get("from").and_then(Value::as_str).expect("from");
        let to = a.get("to").and_then(Value::as_str).expect("to");
        let capacity = a.get("capacity").and_then(Value::as_i64).expect("capacity");
        let base_capacity = a
            .get("base_capacity")
            .and_then(Value::as_i64)
            .expect("base_capacity");
        assert!(capacity > base_capacity, "assignments only grow buffers");
        let src = opt_graph.find_task(from).expect("from exists");
        let dst = opt_graph.find_task(to).expect("to exists");
        let id = opt_graph
            .channel_between(src, dst)
            .expect("channel exists")
            .id();
        opt_graph
            .set_channel_capacity(id, usize::try_from(capacity).expect("positive"))
            .expect("capacity applies");
    }
    let opt_spec = SystemSpec::from_graph(&opt_graph);
    let cold =
        AnalyzedSystem::analyze(&opt_spec, AnalysisConfig::default()).expect("cold re-analysis");
    assert_eq!(
        result
            .get("optimized_spec_hash")
            .and_then(Value::as_str)
            .expect("hash present"),
        format!("{:016x}", opt_spec.canonical_hash()),
        "returned hash addresses the plan-applied spec"
    );
    for p in result
        .get("predictions")
        .and_then(Value::as_array)
        .expect("predictions array")
    {
        let task = p.get("task").and_then(Value::as_str).expect("task");
        let after = p.get("after_ns").and_then(Value::as_i64).expect("after_ns");
        let id = cold.graph().find_task(task).expect("task in cold graph");
        let report = cold.report_for(id).expect("cold report");
        assert_eq!(
            after,
            report.bound.as_nanos(),
            "prediction for {task} must equal the cold re-analysis"
        );
    }
    service.shutdown();
}

#[test]
fn optimize_by_base_hash_reuses_the_warmed_cache_entry() {
    let service = Service::start(ServiceConfig::default());
    let graph = seeded_workload(7);
    let spec = SystemSpec::from_graph(&graph);
    let sink = *graph.sinks().first().expect("funnel has a sink");
    let task = graph.task(sink).name();
    let base = spec.canonical_hash();

    // Unknown base first: a clear error, not a panic.
    let cold = process(
        &service,
        &format!("{{\"id\":1,\"op\":\"optimize\",\"base\":\"{base:016x}\",\"budget_slots\":2}}"),
    );
    assert!(cold.contains("unknown base"), "{cold}");

    // Warm the spec, then optimize by hash: identical bytes to the
    // spec-carrying request (the id is the only difference).
    let warm = process(
        &service,
        &format!(
            "{{\"id\":2,\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
            Value::from(task),
            spec.to_json()
        ),
    );
    assert!(warm.contains("\"status\":\"ok\""), "{warm}");
    let by_hash = process(
        &service,
        &format!("{{\"id\":3,\"op\":\"optimize\",\"base\":\"{base:016x}\",\"budget_slots\":4}}"),
    );
    assert_eq!(by_hash, direct_line(&spec, 4, 0, 3), "hash-addressed bytes");

    // The optimized spec itself was cached: a follow-up optimize
    // against the returned hash must resolve without resending a spec.
    let result = result_of(&by_hash);
    let opt_hash = result
        .get("optimized_spec_hash")
        .and_then(Value::as_str)
        .expect("hash");
    let follow_up = process(
        &service,
        &format!("{{\"id\":4,\"op\":\"optimize\",\"base\":\"{opt_hash}\",\"budget_slots\":0}}"),
    );
    assert!(
        follow_up.contains("\"status\":\"ok\""),
        "optimized spec addressable by hash: {follow_up}"
    );
    service.shutdown();
}

#[test]
fn diag_gate_admits_the_optimized_spec_of_a_clean_base() {
    let service = Service::start(ServiceConfig {
        diag_gate: true,
        ..ServiceConfig::default()
    });
    // Funnel workloads generate with capacity-1 channels, so the base is
    // D007-clean; the default guard must keep the optimized spec clean
    // and therefore admissible through the gate.
    let spec = SystemSpec::from_graph(&seeded_workload(5));
    let line = process(&service, &optimize_line(&spec, 4, 0, 1));
    assert!(
        line.contains("\"status\":\"ok\""),
        "clean base stays admissible after optimization: {line}"
    );
    service.shutdown();
}

#[test]
fn sim_validation_block_reports_observed_disparity_within_bounds() {
    let service = Service::start(ServiceConfig::default());
    let spec = SystemSpec::from_graph(&seeded_workload(7));
    let line = format!(
        "{{\"id\":1,\"op\":\"optimize\",\"budget_slots\":3,\"sim_horizon_ms\":2000,\"spec\":{}}}",
        spec.to_json()
    );
    let result = result_of(&process(&service, &line));
    let sim = result.get("sim").expect("sim block present");
    assert_eq!(
        sim.get("horizon_ms").and_then(Value::as_i64),
        Some(2000),
        "horizon echoed"
    );
    let checks = sim
        .get("checks")
        .and_then(Value::as_array)
        .expect("checks array");
    assert!(!checks.is_empty(), "one check per fusion task");
    for c in checks {
        // A task that never fused inside the horizon reports null; any
        // observed disparity must respect the certified bound.
        if let Some(within) = c.get("within_bound").and_then(Value::as_bool) {
            assert!(within, "observed disparity within certified bound: {c}");
        }
    }
    service.shutdown();
}
