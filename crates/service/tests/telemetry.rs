//! End-to-end live-telemetry contract: every response — ok, error,
//! overloaded, parse failure — carries a `trace_id` that resolves to a
//! complete, well-nested span tree in the exported trace; the `metrics`
//! op serves the Prometheus-style exposition plus windowed percentiles;
//! the `dump` op writes a valid flight-recorder postmortem.
//!
//! One test function: the obs span recorder is global per process, so
//! splitting this into parallel `#[test]`s would interleave spans.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_obs::flight::POSTMORTEM_SCHEMA;
use disparity_obs::{SpanRecord, VIRTUAL_TRACK_BASE};
use disparity_rng::rngs::StdRng;
use disparity_service::proto::{is_trace_id, split_trace};
use disparity_service::server::{serve, ServerHandle};
use disparity_service::service::{Service, ServiceConfig};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

fn seeded_workload(seed: u64) -> (CauseEffectGraph, TaskId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    (graph, sink)
}

fn disparity_request(graph: &CauseEffectGraph, sink: TaskId, id: i64) -> String {
    let spec = SystemSpec::from_graph(graph);
    format!(
        "{{\"id\":{id},\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(graph.task(sink).name()),
        spec.to_json()
    )
}

fn roundtrip(handle: &ServerHandle, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write newline");
    }
    stream.flush().expect("flush");
    let reader = BufReader::new(stream);
    reader
        .lines()
        .take(lines.len())
        .map(|l| l.expect("read response"))
        .collect()
}

/// Split a transport line into its pure body and its well-formed trace id.
fn peel(line: &str) -> (String, String) {
    let (pure, trace) = split_trace(line).expect("response carries a trace_id");
    assert!(is_trace_id(&trace), "malformed trace id: {trace}");
    (pure, trace)
}

fn status_of(line: &str) -> String {
    Value::parse(line)
        .expect("response is valid JSON")
        .get("status")
        .and_then(Value::as_str)
        .expect("status field")
        .to_string()
}

/// Decode the canonical `HHHHHHHH-HHHHHHHH` wire form back to the raw id.
fn trace_u64(id: &str) -> u64 {
    let (hi, lo) = id.split_once('-').expect("dash-separated trace id");
    (u64::from_str_radix(hi, 16).expect("hex high half") << 32)
        | u64::from_str_radix(lo, 16).expect("hex low half")
}

/// Within one track, any two spans must either nest or be disjoint.
fn assert_well_nested(spans: &[SpanRecord]) {
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.thread != b.thread {
                continue;
            }
            let (a0, a1) = (a.start_ns, a.start_ns + a.dur_ns);
            let (b0, b1) = (b.start_ns, b.start_ns + b.dur_ns);
            assert!(
                a1 <= b0 || b1 <= a0 || (b0 <= a0 && a1 <= b1) || (a0 <= b0 && b1 <= a1),
                "spans `{}` [{a0}, {a1}] and `{}` [{b0}, {b1}] partially overlap on track {}",
                a.name,
                b.name,
                a.thread
            );
        }
    }
}

/// Span names recorded under `trace`, in record order.
fn names_for(spans: &[SpanRecord], trace: u64) -> Vec<&'static str> {
    spans.iter().filter(|s| s.trace == trace).map(|s| s.name).collect()
}

#[test]
fn every_response_resolves_to_a_span_tree_and_live_ops_serve_telemetry() {
    disparity_obs::reset();
    disparity_obs::enable();
    let pm_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("telemetry-postmortems");
    let _ = std::fs::remove_dir_all(&pm_dir);

    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        metrics_interval: Some(Duration::from_millis(50)),
        window_intervals: 4,
        postmortem_dir: Some(pm_dir.clone()),
        ..ServiceConfig::default()
    });
    let handle = serve("127.0.0.1:0", service).expect("bind loopback");

    // Phase A — saturate the 1-worker, 1-deep service so the burst splits
    // into completions and `overloaded` refusals, all stamped.
    let burst: Vec<String> = (0..6)
        .map(|i| format!("{{\"id\":{i},\"op\":\"sleep\",\"millis\":25}}"))
        .collect();
    let burst_replies = roundtrip(&handle, &burst);
    assert_eq!(burst_replies.len(), burst.len());
    // status -> trace ids, for the per-status span assertions below.
    let mut by_status: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for line in &burst_replies {
        let (_, trace) = peel(line);
        by_status.entry(status_of(line)).or_default().push(trace_u64(&trace));
    }
    assert!(by_status.contains_key("ok"), "some sleeps completed: {by_status:?}");
    assert!(by_status.contains_key("overloaded"), "admission control fired: {by_status:?}");

    // Phase B — an analysis request twice (cache miss, then hit), a ping,
    // and a malformed line. One connection each, so none races the
    // 1-deep queue; every reply is stamped, parse errors included.
    let (graph, sink) = seeded_workload(17);
    let replies: Vec<String> = [
        disparity_request(&graph, sink, 100),
        disparity_request(&graph, sink, 101),
        "{\"id\":102,\"op\":\"ping\"}".to_string(),
        "this is not json".to_string(),
    ]
    .into_iter()
    .map(|line| roundtrip(&handle, &[line]).remove(0))
    .collect();
    let miss_trace = trace_u64(&peel(&replies[0]).1);
    let hit_trace = trace_u64(&peel(&replies[1]).1);
    let ping_trace = trace_u64(&peel(&replies[2]).1);
    let parse_trace = trace_u64(&peel(&replies[3]).1);
    assert_eq!(status_of(&replies[0]), "ok");
    assert_eq!(status_of(&replies[1]), "ok");
    assert_eq!(status_of(&replies[2]), "ok");
    assert_eq!(status_of(&replies[3]), "error");

    // Phase C — the `metrics` op: exposition text plus windowed view.
    let got = roundtrip(&handle, &["{\"id\":200,\"op\":\"metrics\"}".to_string()]);
    let (pure, _) = peel(&got[0]);
    let v = Value::parse(&pure).expect("metrics reply parses");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    let result = v.get("result").expect("metrics payload");
    let exposition = result
        .get("exposition")
        .and_then(Value::as_str)
        .expect("exposition text");
    for needle in [
        "# TYPE disparity_requests_total counter",
        "# TYPE disparity_queue_depth gauge",
        "# TYPE disparity_request_latency_us summary",
        "outcome=\"completed\"",
        "outcome=\"overloaded\"",
        "endpoint=\"disparity\"",
        "view=\"cumulative\"",
        "view=\"window\"",
        "quantile=\"0.99\"",
    ] {
        assert!(exposition.contains(needle), "exposition lacks {needle:?}:\n{exposition}");
    }
    let window = result.get("window").expect("windowed latency object");
    // The disparity runs finished well under one window (4 x 50 ms) ago,
    // so the sliding view still holds them.
    assert!(window.get("disparity").is_some(), "windowed view covers the disparity endpoint");
    assert_eq!(
        result.get("window_intervals").and_then(Value::as_i64),
        Some(4),
        "window depth is the configured one"
    );

    // Phase D — the `dump` op writes a postmortem and reports its path.
    let got = roundtrip(&handle, &["{\"id\":201,\"op\":\"dump\"}".to_string()]);
    let (pure, dump_trace) = peel(&got[0]);
    let v = Value::parse(&pure).expect("dump reply parses");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    let result = v.get("result").expect("dump payload");
    assert_eq!(result.get("dumped"), Some(&Value::Bool(true)));
    assert!(result.get("events").and_then(Value::as_i64).unwrap() > 0);
    let path = result.get("path").and_then(Value::as_str).expect("dump path");
    assert!(path.contains(&dump_trace), "dump filename carries the requesting trace id");
    let dump = std::fs::read_to_string(path).expect("dump file readable");
    let header = Value::parse(dump.lines().next().expect("header line")).expect("header parses");
    assert_eq!(header.get("schema").and_then(Value::as_str), Some(POSTMORTEM_SCHEMA));
    assert_eq!(header.get("reason").and_then(Value::as_str), Some("dump"));

    handle.shutdown();

    // Every stamped response resolves to a complete span tree: queue wait
    // on the request's virtual track, processing on the worker's track —
    // and the whole export is well-nested per track.
    let spans = disparity_obs::take_spans();
    assert_well_nested(&spans);
    for (status, traces) in &by_status {
        for &trace in traces {
            let names = names_for(&spans, trace);
            match status.as_str() {
                "ok" => {
                    assert!(names.contains(&"service.queue_wait"), "{status} {trace:#x}: {names:?}");
                    assert!(names.contains(&"service.request"), "{status} {trace:#x}: {names:?}");
                }
                "overloaded" => {
                    assert!(names.contains(&"service.refuse"), "{status} {trace:#x}: {names:?}");
                }
                other => panic!("unexpected burst status {other}"),
            }
        }
    }
    for (what, trace, needed) in [
        ("cache miss", miss_trace, "wcrt.response_times"),
        ("cache miss", miss_trace, "service.cache.lookup"),
        ("cache hit", hit_trace, "service.cache.lookup"),
        ("ping", ping_trace, "service.request"),
        ("parse error", parse_trace, "service.parse_error"),
    ] {
        let names = names_for(&spans, trace);
        assert!(names.contains(&needed), "{what} trace {trace:#x} lacks {needed}: {names:?}");
    }
    // The queue-wait spans landed on per-request virtual tracks.
    for span in spans.iter().filter(|s| s.name == "service.queue_wait") {
        assert_eq!(
            span.thread,
            VIRTUAL_TRACK_BASE | span.trace,
            "queue wait rides its request's virtual track"
        );
        assert_eq!(span.depth, 0);
    }
    // The cache-miss request's tree is complete and well-ordered: queue
    // wait ends before processing starts, children inside the root.
    let mut tree: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == miss_trace).collect();
    tree.sort_by_key(|s| s.start_ns);
    let root = tree
        .iter()
        .find(|s| s.name == "service.request")
        .expect("processing root span");
    let wait = tree
        .iter()
        .find(|s| s.name == "service.queue_wait")
        .expect("queue wait span");
    assert!(
        wait.start_ns + wait.dur_ns <= root.start_ns,
        "queue wait precedes processing"
    );
    for child in tree.iter().filter(|s| !["service.queue_wait", "service.request"].contains(&s.name)) {
        assert!(
            root.start_ns <= child.start_ns
                && child.start_ns + child.dur_ns <= root.start_ns + root.dur_ns,
            "span {} sits inside the processing root",
            child.name
        );
    }

    disparity_obs::reset();
    disparity_obs::disable();
}
