//! Model-checked verification of the service's bounded queue and sharded
//! cache (`--features model`).
//!
//! Queue invariants: no lost or duplicated items, per-producer FIFO
//! order, no permit leak (a consumer's pop always releases a slot to a
//! blocked producer), and close-drain delivers every accepted item.
//! Cache invariants: the `len` counter always equals the live slot count
//! — across collision-bucket eviction and the `u64::MAX` clock
//! renumbering — stamps stay unique, and concurrent identical requests
//! converge on one entry (no duplicate canonical text in a bucket).
//!
//! Four mutation probes (`queue::probes`, `cache::probes`) prove the
//! checker has teeth; each caught schedule is committed to
//! `tests/conc_corpus/` and replayed byte-for-byte.

#![cfg(feature = "model")]

use std::path::PathBuf;
use std::sync::Arc;

use disparity_conc::model::{self, corpus, Config};
use disparity_conc::sync::thread;
use disparity_model::builder::SystemBuilder;
use disparity_model::spec::SystemSpec;
use disparity_model::task::TaskSpec;
use disparity_model::time::Duration;
use disparity_sched::wcrt::response_times;
use disparity_service::cache::{probes as cache_probes, GraphEntry, ShardedCache};
use disparity_service::queue::{probes as queue_probes, BoundedQueue};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/conc_corpus")
}

fn cfg() -> Config {
    Config::default()
}

// ---------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------

#[test]
fn queue_delivers_every_item_exactly_once_in_producer_order() {
    let out = model::check(cfg(), || {
        let q = Arc::new(BoundedQueue::new(1));
        let p1 = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.push_blocking(10).unwrap();
                q.push_blocking(11).unwrap();
            })
        };
        let p2 = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push_blocking(20).unwrap())
        };
        // The root is the consumer: three accepted items, three pops.
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(q.pop().expect("an accepted item is never lost"));
        }
        p1.join().unwrap();
        p2.join().unwrap();
        q.close();
        assert_eq!(q.pop(), None, "drained queue pops None after close");
        let pos = |x: i32| got.iter().position(|&v| v == x);
        let (a, b) = (pos(10), pos(11));
        assert!(
            a.is_some() && b.is_some() && a < b,
            "producer-1 order violated: {got:?}"
        );
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 11, 20], "lost or duplicated items: {got:?}");
    });
    out.assert_ok();
    assert!(
        out.complete,
        "exhaustive exploration must finish at the committed config \
         (ran {} schedules)",
        out.schedules
    );
}

#[test]
fn queue_close_drains_every_accepted_item() {
    let out = model::check(cfg(), || {
        let q = Arc::new(BoundedQueue::new(2));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![1, 2], "close-drain lost or reordered items");
    });
    out.assert_ok();
    assert!(out.complete, "ran {} schedules", out.schedules);
}

#[test]
fn queue_random_schedules_stay_clean_beyond_the_exhaustive_budget() {
    // Seeded random exploration at a higher preemption bound than the
    // exhaustive pass: covers schedules the bounded DFS excludes.
    let out = model::check(
        Config {
            mode: model::Mode::Random {
                seed: 0x0B5E_55ED,
                schedules: 300,
            },
            preemption_bound: 4,
            ..Config::default()
        },
        || {
            let q = Arc::new(BoundedQueue::new(1));
            let p1 = {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    q.push_blocking(10).unwrap();
                    q.push_blocking(11).unwrap();
                })
            };
            let p2 = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push_blocking(20).unwrap())
            };
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(q.pop().expect("an accepted item is never lost"));
            }
            p1.join().unwrap();
            p2.join().unwrap();
            got.sort_unstable();
            assert_eq!(got, vec![10, 11, 20], "lost or duplicated items");
        },
    );
    out.assert_ok();
    assert_eq!(out.schedules, 300);
}

#[test]
fn mutant_pop_without_permit_release_is_caught() {
    let v = corpus::verify(
        &corpus_dir(),
        "queue_pop_missing_permit_release.json",
        cfg(),
        || {
            let q = Arc::new(BoundedQueue::new(1));
            q.try_push(1).unwrap();
            let producer = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push_blocking(2).unwrap())
            };
            // Mutant pop frees the slot but never releases the permit: a
            // producer parked on the full queue sleeps forever.
            assert_eq!(queue_probes::pop_missing_permit_release(&q), Some(1));
            producer.join().unwrap();
        },
    );
    assert!(
        v.message.contains("deadlock"),
        "expected a lost-wakeup deadlock, got: {}",
        v.message
    );
}

#[test]
fn mutant_push_without_notify_is_caught() {
    let v = corpus::verify(
        &corpus_dir(),
        "queue_push_missing_notify.json",
        cfg(),
        || {
            let q = Arc::new(BoundedQueue::new(1));
            let consumer = {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            };
            queue_probes::push_blocking_missing_notify(&q, 7).unwrap();
            assert_eq!(consumer.join().unwrap(), Some(7));
        },
    );
    assert!(
        v.message.contains("deadlock"),
        "expected a lost-wakeup deadlock, got: {}",
        v.message
    );
}

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

/// Builds a distinct analyzed entry per `ms` (period in milliseconds):
/// canonical hash, canonical text, and the packed [`GraphEntry`].
fn entry(ms: i64) -> (u64, String, GraphEntry) {
    let mut b = SystemBuilder::new();
    let e = b.add_ecu("e");
    let s = b.add_task(TaskSpec::periodic("s", Duration::from_millis(ms)));
    let t = b.add_task(
        TaskSpec::periodic("t", Duration::from_millis(ms))
            .execution(Duration::from_millis(1), Duration::from_millis(2))
            .on_ecu(e),
    );
    b.connect(s, t);
    let graph = b.build().unwrap();
    let rt = response_times(&graph).unwrap();
    let spec = SystemSpec::from_graph(&graph);
    let hash = spec.canonical_hash();
    let text = spec.canonical_text();
    let entry = GraphEntry::new(spec.canonical(), spec, graph, rt);
    (hash, text, entry)
}

fn audit(cache: &ShardedCache) {
    if let Err(e) = cache.debug_audit() {
        panic!("cache invariant broken: {e}");
    }
}

#[test]
fn cache_len_matches_live_slots_under_concurrent_inserts() {
    let out = model::check(cfg(), || {
        // Capacity 8 = one slot per shard; keys 5 and 13 share shard 5,
        // so the second insert must evict the first.
        let cache = Arc::new(ShardedCache::new(8));
        let t1 = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let (_, _, e1) = entry(10);
                cache.insert(5, e1);
            })
        };
        let t2 = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let (_, _, e2) = entry(20);
                cache.insert(13, e2);
            })
        };
        t1.join().unwrap();
        t2.join().unwrap();
        audit(&cache);
        assert_eq!(cache.len(), 1, "shard capacity 1: one insert evicted");
    });
    out.assert_ok();
    assert!(out.complete, "ran {} schedules", out.schedules);
}

#[test]
fn cache_clock_renumbering_keeps_lru_bookkeeping() {
    let out = model::check(cfg(), || {
        // Capacity 16 = two slots per shard. Fill shard 5, pin its clock
        // at u64::MAX, then race a recency-bumping get against an insert
        // that must renumber the stamps and evict.
        let cache = Arc::new(ShardedCache::new(16));
        let (_, text1, e1) = entry(10);
        let (_, _, e2) = entry(20);
        cache.insert(5, e1);
        cache.insert(13, e2);
        cache.debug_set_clock(5, u64::MAX);
        let getter = {
            let cache = Arc::clone(&cache);
            let text1 = text1.clone();
            thread::spawn(move || {
                let _ = cache.get(5, &text1);
            })
        };
        let inserter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let (_, _, e3) = entry(30);
                cache.insert(21, e3)
            })
        };
        getter.join().unwrap();
        let e3 = inserter.join().unwrap();
        audit(&cache);
        assert_eq!(cache.len(), 2, "renumbering must not break the counter");
        let hit = cache.get(21, e3.canonical_text());
        assert!(
            hit.is_some_and(|h| Arc::ptr_eq(&h, &e3)),
            "the newest insert is never the eviction victim"
        );
    });
    out.assert_ok();
    assert!(out.complete, "ran {} schedules", out.schedules);
}

#[test]
fn mutant_double_len_decrement_is_caught() {
    let v = corpus::verify(
        &corpus_dir(),
        "cache_double_len_decrement.json",
        cfg(),
        || {
            let cache = Arc::new(ShardedCache::new(16));
            let (_, _, e1) = entry(10);
            let (_, _, e2) = entry(20);
            cache.insert(5, e1);
            cache.insert(13, e2);
            let getter = {
                let cache = Arc::clone(&cache);
                let (_, text, _) = entry(10);
                thread::spawn(move || {
                    let _ = cache.get(5, &text);
                })
            };
            let (_, _, e3) = entry(30);
            cache_probes::insert_double_decrement_eviction(&cache, 21, e3);
            getter.join().unwrap();
            audit(&cache);
        },
    );
    assert!(
        v.message.contains("len counter"),
        "expected a len/live-slot desync, got: {}",
        v.message
    );
}

#[test]
fn mutant_retain_eviction_is_caught() {
    let v = corpus::verify(
        &corpus_dir(),
        "cache_retain_eviction.json",
        cfg(),
        || {
            // Two colliding specs in ONE bucket (same key, different
            // canonical text), inserted through the stale-stamp probe so
            // they share a recency stamp; the retain-based eviction then
            // drops both while `len` decrements once.
            let cache = Arc::new(ShardedCache::new(16));
            let (_, _, e1) = entry(10);
            let (_, _, e2) = entry(20);
            cache_probes::insert_retain_eviction(&cache, 5, e1);
            cache_probes::insert_retain_eviction(&cache, 5, e2);
            let reader = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.len())
            };
            let (_, _, e3) = entry(30);
            cache_probes::insert_retain_eviction(&cache, 5, e3);
            reader.join().unwrap();
            audit(&cache);
        },
    );
    assert!(
        v.message.contains("len counter"),
        "expected a len/live-slot desync, got: {}",
        v.message
    );
}
