//! Panic isolation, worker supervision, and spec quarantine.
//!
//! The `panic` op is the deterministic trigger: `mode:"unwind"` panics
//! inside the per-request `catch_unwind` boundary (structured
//! `internal_error`, worker survives), `mode:"worker"` kills the worker
//! thread itself (no response for that request; the supervisor respawns).
//! Either way the spec takes a quarantine strike; after two strikes every
//! further request naming that spec is answered `rejected` immediately.
//!
//! The unwind test also exercises the flight-recorder postmortem path:
//! every contained panic must dump an NDJSON postmortem naming the
//! poisoned request's `trace_id` and the lifecycle events that led up to
//! it, and the recorder must keep accepting events afterwards.
//!
//! The span recorder stays disabled here (it is global per process); the
//! flight recorder is always on by design.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use disparity_core::disparity::AnalysisConfig;
use disparity_core::engine::AnalysisEngine;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::json::Value;
use disparity_model::spec::SystemSpec;
use disparity_obs::flight::{self, EventKind, POSTMORTEM_SCHEMA};
use disparity_rng::rngs::StdRng;
use disparity_sched::wcrt::response_times;
use disparity_service::proto::{
    encode_disparity_result, is_trace_id, response_line, split_trace, ResponseBody, Status,
};
use disparity_service::server::{serve, ServerHandle};
use disparity_service::service::{Service, ServiceConfig, QUARANTINE_AFTER};
use disparity_workload::funnel::{schedulable_funnel_system, FunnelConfig};

fn seeded_workload(seed: u64) -> (CauseEffectGraph, TaskId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = schedulable_funnel_system(&FunnelConfig::default(), &mut rng, 64)
        .expect("funnel workload generates");
    let sink = *graph.sinks().first().expect("funnel has a sink");
    (graph, sink)
}

fn expected_line(graph: &CauseEffectGraph, sink: TaskId, id: i64) -> String {
    let rt = response_times(graph).expect("schedulable workload");
    let report = AnalysisEngine::new(graph, &rt)
        .worst_case_disparity(sink, AnalysisConfig::default())
        .expect("direct analysis succeeds");
    response_line(
        &Value::Int(id),
        Status::Ok,
        ResponseBody::Result(encode_disparity_result(graph, &report)),
    )
}

fn disparity_request(graph: &CauseEffectGraph, sink: TaskId, id: i64) -> String {
    let spec = SystemSpec::from_graph(graph);
    format!(
        "{{\"id\":{id},\"op\":\"disparity\",\"task\":{},\"spec\":{}}}",
        Value::from(graph.task(sink).name()),
        spec.to_json()
    )
}

fn panic_request(graph: &CauseEffectGraph, mode: &str, id: i64) -> String {
    let spec = SystemSpec::from_graph(graph);
    format!(
        "{{\"id\":{id},\"op\":\"panic\",\"mode\":\"{mode}\",\"spec\":{}}}",
        spec.to_json()
    )
}

fn roundtrip(handle: &ServerHandle, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write newline");
    }
    stream.flush().expect("flush");
    let reader = BufReader::new(stream);
    reader
        .lines()
        .take(lines.len())
        .map(|l| l.expect("read response"))
        .collect()
}

fn start_server(config: ServiceConfig) -> ServerHandle {
    let service = Service::start(config);
    serve("127.0.0.1:0", service).expect("bind loopback")
}

fn status_of(line: &str) -> String {
    Value::parse(line)
        .expect("response is valid JSON")
        .get("status")
        .and_then(Value::as_str)
        .expect("status field")
        .to_string()
}

fn error_of(line: &str) -> String {
    Value::parse(line)
        .expect("response is valid JSON")
        .get("error")
        .and_then(Value::as_str)
        .expect("error field")
        .to_string()
}

/// Split a transport line into its pure body and its well-formed trace id.
fn peel(line: &str) -> (String, String) {
    let (pure, trace) = split_trace(line).expect("response carries a trace_id");
    assert!(is_trace_id(&trace), "malformed trace id: {trace}");
    (pure, trace)
}

/// Read the postmortem dump for `reason` + `trace` out of `dir`.
fn read_postmortem(dir: &Path, reason: &str, trace: &str) -> String {
    let suffix = format!("-{reason}-{trace}.ndjson");
    let path = std::fs::read_dir(dir)
        .expect("postmortem dir exists")
        .map(|e| e.expect("readable dir entry").path())
        .find(|p| {
            p.file_name()
                .map(|n| n.to_string_lossy().ends_with(&suffix))
                .unwrap_or(false)
        })
        .unwrap_or_else(|| panic!("no postmortem *-{reason}-{trace}.ndjson in {}", dir.display()));
    std::fs::read_to_string(path).expect("postmortem is readable")
}

/// Event names in `dump` recorded under `trace`, in dump order.
fn events_for_trace(dump: &str, trace: &str) -> Vec<String> {
    dump.lines()
        .skip(1) // header object
        .map(|l| Value::parse(l).expect("postmortem line is valid JSON"))
        .filter(|v| v.get("trace_id").and_then(Value::as_str) == Some(trace))
        .map(|v| v.get("event").and_then(Value::as_str).expect("event field").to_string())
        .collect()
}

#[test]
fn unwind_panic_answers_internal_error_and_quarantines_after_two() {
    let pm_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("panic-postmortems");
    let _ = std::fs::remove_dir_all(&pm_dir);
    let handle = start_server(ServiceConfig {
        workers: 2,
        postmortem_dir: Some(pm_dir.clone()),
        ..ServiceConfig::default()
    });
    let (poison, _) = seeded_workload(51);
    let hash = SystemSpec::from_graph(&poison).canonical_hash();
    let hash_hex = format!("{hash:016x}");

    // Strikes 1..=QUARANTINE_AFTER: contained panics, structured errors.
    let mut strike_traces = Vec::new();
    for strike in 1..=QUARANTINE_AFTER {
        let got = roundtrip(&handle, &[panic_request(&poison, "unwind", 1)]);
        assert_eq!(status_of(&got[0]), "internal_error", "strike {strike}");
        strike_traces.push(peel(&got[0]).1);
        let err = error_of(&got[0]);
        assert!(
            err.contains(&hash_hex),
            "error names the spec hash (strike {strike}): {err}"
        );
        assert!(
            err.contains("deliberate panic"),
            "error carries the panic payload (strike {strike}): {err}"
        );
    }

    // Satellite: every contained panic dumped a postmortem correlated to
    // the poisoned request, holding the full lead-up to the failure.
    for (strike, trace) in strike_traces.iter().enumerate() {
        let dump = read_postmortem(&pm_dir, "panic", trace);
        let header = Value::parse(dump.lines().next().expect("header line"))
            .expect("header is valid JSON");
        assert_eq!(header.get("schema").and_then(Value::as_str), Some(POSTMORTEM_SCHEMA));
        assert_eq!(header.get("reason").and_then(Value::as_str), Some("panic"));
        assert_eq!(header.get("trace_id").and_then(Value::as_str), Some(trace.as_str()));
        let events = events_for_trace(&dump, trace);
        for needed in ["accept", "admit", "dequeue", "panic"] {
            assert!(
                events.iter().any(|e| e == needed),
                "strike {} postmortem records {needed} for {trace}: {events:?}",
                strike + 1
            );
        }
    }
    // The threshold strike also dumped a quarantine postmortem.
    let quarantine_trace = strike_traces.last().unwrap();
    let dump = read_postmortem(&pm_dir, "quarantine", quarantine_trace);
    assert!(
        events_for_trace(&dump, quarantine_trace).iter().any(|e| e == "quarantine"),
        "quarantine postmortem records the quarantine event"
    );

    // The panics did not wedge the recorder: it still accepts events.
    flight::record(EventKind::Dump, 0xfee1_0001);
    assert!(
        flight::snapshot()
            .iter()
            .any(|e| e.kind == EventKind::Dump && e.arg == 0xfee1_0001),
        "flight recorder keeps accepting events after panics"
    );

    // Strike threshold reached: the spec is quarantined, and every
    // further request naming it — panic op or real analysis — bounces
    // without reaching the engine (or the panic site).
    let got = roundtrip(&handle, &[panic_request(&poison, "unwind", 2)]);
    assert_eq!(status_of(&got[0]), "rejected");
    assert!(error_of(&got[0]).contains("quarantined"));
    let poison_sink = *poison.sinks().first().unwrap();
    let got = roundtrip(&handle, &[disparity_request(&poison, poison_sink, 3)]);
    assert_eq!(status_of(&got[0]), "rejected", "analysis of a quarantined spec bounces");

    // A healthy spec is unaffected: after peeling the transport's
    // trace stamp, the body is byte-identical to the direct run.
    let (healthy, sink) = seeded_workload(52);
    let want = expected_line(&healthy, sink, 4);
    let got = roundtrip(&handle, &[disparity_request(&healthy, sink, 4)]);
    let (pure, _) = peel(&got[0]);
    assert_eq!(pure, want);

    // The panics never killed a worker.
    let service = handle.service();
    assert_eq!(service.workers_alive(), 2, "both workers alive");

    // Counters and stats surface all of it.
    let got = roundtrip(&handle, &["{\"id\":9,\"op\":\"stats\"}".to_string()]);
    let v = Value::parse(&got[0]).unwrap();
    let result = v.get("result").expect("stats payload");
    let counters = result.get("counters").expect("counters object");
    assert_eq!(
        counters.get("panics").and_then(Value::as_i64),
        Some(i64::from(QUARANTINE_AFTER)),
    );
    assert!(counters.get("quarantined").and_then(Value::as_i64).unwrap() >= 2);
    assert_eq!(result.get("quarantined_specs").and_then(Value::as_i64), Some(1));
    assert_eq!(result.get("workers_alive").and_then(Value::as_i64), Some(2));
    handle.shutdown();
}

#[test]
fn dead_worker_is_respawned_and_spec_quarantined() {
    let handle = start_server(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let service = handle.service();
    let (poison, _) = seeded_workload(61);

    // Two worker-killing requests. A killed worker takes the in-flight
    // job with it, so no response comes back — read with a timeout and
    // expect silence, then wait for the supervisor to restore the pool.
    for strike in 1..=QUARANTINE_AFTER {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        stream
            .write_all(format!("{}\n", panic_request(&poison, "worker", 1)).as_bytes())
            .unwrap();
        let mut buf = [0u8; 64];
        match std::io::Read::read(&mut stream, &mut buf) {
            Ok(0) => {}
            Ok(n) => panic!(
                "worker-death request must go unanswered, got {:?}",
                String::from_utf8_lossy(&buf[..n])
            ),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ),
                "unexpected read error: {e}"
            ),
        }

        // Supervisor notices the corpse and respawns within its poll loop.
        let deadline = Instant::now() + Duration::from_secs(5);
        while service.workers_alive() < 2 {
            assert!(
                Instant::now() < deadline,
                "supervisor did not respawn the worker (strike {strike})"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Quarantined now: the same op is answered `rejected` — and answered
    // at all, proving the pool survived two worker deaths.
    let got = roundtrip(&handle, &[panic_request(&poison, "worker", 2)]);
    assert_eq!(status_of(&got[0]), "rejected");
    assert!(error_of(&got[0]).contains("quarantined"));

    // Health reflects the supervision history.
    let got = roundtrip(&handle, &["{\"id\":7,\"op\":\"health\"}".to_string()]);
    let v = Value::parse(&got[0]).unwrap();
    assert_eq!(status_of(&got[0]), "ok");
    let health = v.get("result").expect("health payload");
    assert_eq!(health.get("workers_configured").and_then(Value::as_i64), Some(2));
    assert_eq!(health.get("workers_alive").and_then(Value::as_i64), Some(2));
    assert_eq!(
        health.get("worker_respawns").and_then(Value::as_i64),
        Some(i64::from(QUARANTINE_AFTER)),
    );
    assert_eq!(health.get("quarantined_specs").and_then(Value::as_i64), Some(1));
    assert_eq!(health.get("draining"), Some(&Value::Bool(false)));
    handle.shutdown();
}
