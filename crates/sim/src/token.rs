//! Data tokens and their provenance.
//!
//! Every token produced by a job carries two kinds of provenance:
//!
//! * **Source stamps** — for each ancestor source task, the *interval*
//!   `[min, max]` of source-job timestamps reachable by tracing immediate
//!   backward job chains along every path. The time disparity of a job is
//!   exactly the spread of the union of these intervals (Definition 2).
//! * **Chain stamps** — for each explicitly monitored chain, the single
//!   timestamp traced along *that* path, which yields the chain's observed
//!   backward time.

use std::collections::BTreeMap;
use std::rc::Rc;

use disparity_model::ids::TaskId;
use disparity_model::time::Instant;

/// Identifies one job: the `index`-th activation of `task` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobRef {
    /// The releasing task.
    pub task: TaskId,
    /// 0-based activation index.
    pub index: u64,
}

impl core::fmt::Display for JobRef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}#{}", self.task, self.index)
    }
}

/// The interval of source timestamps traced to one source task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceStamp {
    /// Earliest traced timestamp.
    pub min: Instant,
    /// Latest traced timestamp.
    pub max: Instant,
}

impl SourceStamp {
    /// A fresh stamp for a token produced by a source job at `at`.
    #[must_use]
    pub fn point(at: Instant) -> Self {
        SourceStamp { min: at, max: at }
    }

    /// Pointwise union of two stamps.
    #[must_use]
    pub fn merge(self, other: SourceStamp) -> Self {
        SourceStamp {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// The provenance map of a token or a running job: source task → stamp.
pub type SourceMap = BTreeMap<TaskId, SourceStamp>;

/// Merges `from` into `into` (pointwise interval union).
pub fn merge_sources(into: &mut SourceMap, from: &SourceMap) {
    for (&task, &stamp) in from {
        into.entry(task)
            .and_modify(|s| *s = s.merge(stamp))
            .or_insert(stamp);
    }
}

/// Spread of a source map: the time disparity sample of a job whose merged
/// provenance it is — `max over all stamps − min over all stamps`
/// (`None` for an empty map).
#[must_use]
pub fn source_spread(sources: &SourceMap) -> Option<disparity_model::time::Duration> {
    let min = sources.values().map(|s| s.min).min()?;
    let max = sources.values().map(|s| s.max).max()?;
    Some(max - min)
}

/// An immutable data token in a channel buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The producing job.
    pub produced_by: JobRef,
    /// Release time of the producing job.
    pub producer_release: Instant,
    /// Time the token was written (the producer's finish).
    pub produced_at: Instant,
    /// Source provenance (see module docs).
    pub sources: SourceMap,
    /// Per-monitored-chain traced source timestamp, indexed by chain id;
    /// only meaningful on channels the chain routes through.
    pub chain_stamps: BTreeMap<usize, Instant>,
}

/// Tokens are shared (not copied) between channel buffers and readers.
pub type SharedToken = Rc<Token>;

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::time::Duration;

    fn at(ms: i64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn stamp_merge_widens() {
        let a = SourceStamp::point(at(10));
        let b = SourceStamp::point(at(30));
        let m = a.merge(b);
        assert_eq!(m.min, at(10));
        assert_eq!(m.max, at(30));
        assert_eq!(m.merge(a), m);
    }

    #[test]
    fn source_map_merge_and_spread() {
        let t0 = TaskId::from_index(0);
        let t1 = TaskId::from_index(1);
        let mut a: SourceMap = BTreeMap::new();
        a.insert(t0, SourceStamp::point(at(0)));
        let mut b: SourceMap = BTreeMap::new();
        b.insert(t0, SourceStamp::point(at(20)));
        b.insert(t1, SourceStamp::point(at(5)));
        merge_sources(&mut a, &b);
        assert_eq!(
            a[&t0],
            SourceStamp {
                min: at(0),
                max: at(20)
            }
        );
        assert_eq!(a[&t1], SourceStamp::point(at(5)));
        assert_eq!(source_spread(&a), Some(Duration::from_millis(20)));
    }

    #[test]
    fn empty_spread_is_none() {
        assert_eq!(source_spread(&SourceMap::new()), None);
    }

    #[test]
    fn single_point_spread_is_zero() {
        let mut m = SourceMap::new();
        m.insert(TaskId::from_index(0), SourceStamp::point(at(7)));
        assert_eq!(source_spread(&m), Some(Duration::ZERO));
    }

    #[test]
    fn jobref_display() {
        let j = JobRef {
            task: TaskId::from_index(2),
            index: 9,
        };
        assert_eq!(j.to_string(), "task2#9");
    }
}
