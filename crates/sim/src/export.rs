//! Trace export: Chrome trace-event JSON and ASCII Gantt rendering.
//!
//! A recorded [`Trace`] can be inspected in `chrome://tracing` /
//! [Perfetto](https://ui.perfetto.dev) — each ECU becomes a track, each
//! job a duration event — or printed as a quick ASCII Gantt chart for
//! terminal debugging.

use std::fmt::Write as _;

use disparity_model::graph::CauseEffectGraph;
use disparity_model::time::{Duration, Instant};

use crate::trace::Trace;

/// Renders the trace in the Chrome trace-event format (JSON array of
/// complete events, timestamps in microseconds).
///
/// Zero-cost stimuli are skipped (they have no extent on a timeline);
/// every other completed job becomes one `"X"` event on its ECU's track
/// with the job id in the name.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sim::prelude::*;
/// use disparity_sim::export::to_chrome_trace;
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s = b.add_task(TaskSpec::periodic("s", ms(10)));
/// let t = b.add_task(TaskSpec::periodic("t", ms(10)).execution(ms(1), ms(2)).on_ecu(ecu));
/// b.connect(s, t);
/// let g = b.build()?;
/// let sim = Simulator::new(&g, SimConfig { record_trace: true, ..Default::default() });
/// let trace = sim.run()?.trace.expect("recording enabled");
/// let json = to_chrome_trace(&trace, &g);
/// assert!(json.starts_with('['));
/// assert!(json.contains("\"ph\":\"X\""));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn to_chrome_trace(trace: &Trace, graph: &CauseEffectGraph) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for task in graph.tasks() {
        if task.is_zero_cost() {
            continue;
        }
        let ecu = task.ecu().map_or(usize::MAX, |e| e.index());
        for job in trace.jobs_of(task.id()) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "  {{\"name\":\"{}#{}\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"release_us\":{},\"response_us\":{}}}}}",
                escape(task.name()),
                job.job.index,
                job.start.as_nanos() / 1_000,
                (job.finish - job.start).as_nanos().max(1) / 1_000,
                ecu,
                job.release.as_nanos() / 1_000,
                job.response_time().as_nanos() / 1_000,
            );
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders an ASCII Gantt chart of the window `[from, to)` with one row
/// per costly task, `columns` characters wide.
///
/// `#` marks execution, `.` marks released-but-waiting time, spaces are
/// idle. Useful for eyeballing non-preemptive blocking in a terminal.
///
/// # Panics
///
/// Panics if `to <= from` or `columns == 0`.
#[must_use]
pub fn to_ascii_gantt(
    trace: &Trace,
    graph: &CauseEffectGraph,
    from: Instant,
    to: Instant,
    columns: usize,
) -> String {
    assert!(to > from, "empty window");
    assert!(columns > 0, "need at least one column");
    let span = to - from;
    let col_of = |t: Instant| -> usize {
        let offset = (t - from).as_nanos().clamp(0, span.as_nanos() - 1);
        (offset as u128 * columns as u128 / span.as_nanos() as u128) as usize
    };
    let mut out = String::new();
    let _ = writeln!(out, "gantt [{from} .. {to}] ('#' running, '.' waiting)");
    for task in graph.tasks() {
        if task.is_zero_cost() {
            continue;
        }
        let mut row = vec![b' '; columns];
        for job in trace.jobs_of(task.id()) {
            if job.finish <= from || job.release >= to {
                continue;
            }
            for c in &mut row[col_of(job.release)..=col_of(job.start)] {
                *c = b'.';
            }
            for c in &mut row[col_of(job.start)..=col_of(job.finish - Duration::from_nanos(1))] {
                *c = b'#';
            }
        }
        let _ = writeln!(
            out,
            "{:>12} |{}|",
            task.name(),
            String::from_utf8_lossy(&row)
        );
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if c < '\u{20}' => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::exec::ExecutionTimeModel;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn traced() -> (CauseEffectGraph, Trace) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let hi = b.add_task(
            TaskSpec::periodic("hi", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let lo = b.add_task(
            TaskSpec::periodic("lo", ms(20))
                .execution(ms(3), ms(5))
                .on_ecu(e),
        );
        b.connect(s, hi);
        b.connect(s, lo);
        let g = b.build().unwrap();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(100),
                exec_model: ExecutionTimeModel::WorstCase,
                record_trace: true,
                ..Default::default()
            },
        );
        let trace = sim.run().unwrap().trace.unwrap();
        (g, trace)
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let (g, trace) = traced();
        let json = to_chrome_trace(&trace, &g);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // 10 hi jobs + 5 lo jobs; stimuli excluded.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 15);
        assert!(!json.contains("\"s#"));
        assert!(json.contains("\"hi#0\""));
    }

    #[test]
    fn chrome_trace_escapes_control_characters_in_names() {
        // A task name with embedded newline/tab/quote must still yield
        // parseable JSON: the exporter escapes U+0000–U+001F like the
        // in-tree codec does.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("stim", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("na\nme\t\"x\"\u{1}", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(20),
                record_trace: true,
                ..Default::default()
            },
        );
        let trace = sim.run().unwrap().trace.unwrap();
        let json = to_chrome_trace(&trace, &g);
        assert!(
            json.chars().all(|c| c == '\n' || c >= '\u{20}'),
            "control character leaked into trace JSON"
        );
        let parsed = disparity_model::json::Value::parse(&json).unwrap();
        let events = parsed.as_array().unwrap();
        assert!(!events.is_empty());
        let name = events[0].get("name").unwrap().as_str().unwrap();
        assert!(name.starts_with("na\nme\t\"x\"\u{1}"));
    }

    #[test]
    fn gantt_marks_execution_and_waiting() {
        let (g, trace) = traced();
        let art = to_ascii_gantt(&trace, &g, Instant::ZERO, Instant::from_millis(40), 80);
        assert!(art.contains("hi"));
        assert!(art.contains('#'));
        let hi_row = art.lines().find(|l| l.contains("hi")).unwrap();
        assert!(hi_row.contains('#'));
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn gantt_rejects_empty_window() {
        let (g, trace) = traced();
        let _ = to_ascii_gantt(&trace, &g, Instant::ZERO, Instant::ZERO, 10);
    }
}
