//! Execution-time models for simulated jobs.

use disparity_model::task::Task;
use disparity_model::time::Duration;
use disparity_rng::Rng;

/// How a job's actual execution time is drawn from `[B(τ), W(τ)]`.
///
/// The paper's evaluation simulates systems whose jobs may run anywhere
/// between their best- and worst-case execution times; the observed maximum
/// disparity ("Sim") is a *lower* bound on the true worst case, which is
/// why the analytical bounds must dominate it at any setting here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecutionTimeModel {
    /// Every job takes exactly `W(τ)`.
    WorstCase,
    /// Every job takes exactly `B(τ)`.
    BestCase,
    /// Each job independently draws a uniform time in `[B(τ), W(τ)]`.
    #[default]
    Uniform,
    /// Jobs alternate deterministically between `B(τ)` and `W(τ)`
    /// (a cheap way to exercise jitter without randomness).
    Alternating,
}

impl ExecutionTimeModel {
    /// Draws the execution time of the `index`-th job of `task`.
    ///
    /// # Examples
    ///
    /// ```
    /// use disparity_sim::exec::ExecutionTimeModel;
    /// # use disparity_model::prelude::*;
    /// # use disparity_rng::SeedableRng;
    /// # let mut b = SystemBuilder::new();
    /// # let e = b.add_ecu("e");
    /// # let ms = Duration::from_millis;
    /// # let t = b.add_task(TaskSpec::periodic("t", ms(10)).execution(ms(1), ms(3)).on_ecu(e));
    /// # let g = b.build().unwrap();
    /// # let task = g.task(t);
    /// let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(7);
    /// let e = ExecutionTimeModel::Uniform.draw(task, 0, &mut rng);
    /// assert!(task.bcet() <= e && e <= task.wcet());
    /// ```
    pub fn draw<R: Rng + ?Sized>(self, task: &Task, index: u64, rng: &mut R) -> Duration {
        match self {
            ExecutionTimeModel::WorstCase => task.wcet(),
            ExecutionTimeModel::BestCase => task.bcet(),
            ExecutionTimeModel::Uniform => {
                let lo = task.bcet().as_nanos();
                let hi = task.wcet().as_nanos();
                if lo == hi {
                    task.wcet()
                } else {
                    Duration::from_nanos(rng.gen_range(lo..=hi))
                }
            }
            ExecutionTimeModel::Alternating => {
                if index.is_multiple_of(2) {
                    task.bcet()
                } else {
                    task.wcet()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn sample_task() -> disparity_model::graph::CauseEffectGraph {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let ms = Duration::from_millis;
        b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(2), ms(5))
                .on_ecu(e),
        );
        b.build().unwrap()
    }

    #[test]
    fn fixed_models_return_extremes() {
        let g = sample_task();
        let t = &g.tasks()[0];
        let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(0);
        assert_eq!(ExecutionTimeModel::WorstCase.draw(t, 0, &mut rng), t.wcet());
        assert_eq!(ExecutionTimeModel::BestCase.draw(t, 0, &mut rng), t.bcet());
    }

    #[test]
    fn uniform_stays_in_range_and_is_deterministic_per_seed() {
        let g = sample_task();
        let t = &g.tasks()[0];
        let draw_all = |seed: u64| {
            let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(seed);
            (0..100)
                .map(|i| ExecutionTimeModel::Uniform.draw(t, i, &mut rng))
                .collect::<Vec<_>>()
        };
        let a = draw_all(42);
        let b = draw_all(42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&e| t.bcet() <= e && e <= t.wcet()));
        assert!(a.iter().any(|&e| e != a[0]), "should actually vary");
    }

    #[test]
    fn alternating_flips_each_job() {
        let g = sample_task();
        let t = &g.tasks()[0];
        let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(0);
        assert_eq!(
            ExecutionTimeModel::Alternating.draw(t, 0, &mut rng),
            t.bcet()
        );
        assert_eq!(
            ExecutionTimeModel::Alternating.draw(t, 1, &mut rng),
            t.wcet()
        );
        assert_eq!(
            ExecutionTimeModel::Alternating.draw(t, 2, &mut rng),
            t.bcet()
        );
    }

    #[test]
    fn degenerate_range_needs_no_rng() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let ms = Duration::from_millis;
        b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(3), ms(3))
                .on_ecu(e),
        );
        let g = b.build().unwrap();
        let t = &g.tasks()[0];
        let mut rng = disparity_rng::rngs::StdRng::seed_from_u64(0);
        assert_eq!(ExecutionTimeModel::Uniform.draw(t, 0, &mut rng), ms(3));
    }
}
