//! The discrete-event simulation engine.
//!
//! Simulates a cause-effect graph under per-ECU **non-preemptive
//! fixed-priority** scheduling with the paper's implicit communication
//! semantics: a job reads all input channels when it starts and writes its
//! output token when it finishes; registers overwrite, FIFOs evict their
//! oldest token and readers peek the head.
//!
//! ## Event ordering
//!
//! At equal timestamps the engine processes **finish events, then release
//! events (in topological task order), then dispatches each ECU**. Hence a
//! token written at `t` is visible to any job starting at `t`, matching
//! Definition 1's "finishes no later than the start". Zero-cost tasks (the
//! paper's source stimuli, `W = B = 0`) execute instantaneously off-CPU at
//! their release. Costly tasks always run for at least 1 ns so that a
//! token's write instant is strictly after its read instants — this keeps
//! the immediate-backward-chain semantics unambiguous at timestamp ties.
//!
//! The engine is fully deterministic given the configuration seed.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::rc::Rc;

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::{ChannelId, Priority, TaskId};
use disparity_model::time::{Duration, Instant};
use disparity_rng::rngs::StdRng;

use crate::error::SimError;
use crate::exec::ExecutionTimeModel;
use crate::fault::{FaultPlan, FaultSummary};
use crate::metrics::ObservedMetrics;
use crate::token::{
    merge_sources, source_spread, JobRef, SharedToken, SourceMap, SourceStamp, Token,
};
use crate::trace::{JobRecord, ReadRecord, Trace};

/// Which communication model the simulated tasks follow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CommunicationSemantics {
    /// The paper's model (§II): a job reads its inputs when it *starts*
    /// executing and writes its output when it *finishes*.
    #[default]
    Implicit,
    /// Logical Execution Time: a job reads its inputs at its *release*
    /// and its output becomes visible exactly one period later, making the
    /// dataflow independent of scheduling. Because LET dataflow by
    /// construction cannot be influenced by CPU contention, the engine
    /// does not dispatch LET jobs onto ECUs (response-time metrics stay
    /// zero); a job's trace record spans `[release, release + T)`.
    LogicalExecutionTime,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Simulated time span `[0, horizon)`.
    pub horizon: Duration,
    /// How job execution times are drawn.
    pub exec_model: ExecutionTimeModel,
    /// RNG seed (the run is deterministic per seed).
    pub seed: u64,
    /// Samples taken before this instant are excluded from the metrics
    /// (Lemma 6 holds "in the long term", once FIFOs have filled).
    pub warmup: Duration,
    /// Record a full [`Trace`] (memory grows with the horizon).
    pub record_trace: bool,
    /// Communication model (implicit by default).
    pub semantics: CommunicationSemantics,
    /// Fault-injection plan (nothing injected by default).
    pub fault: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: Duration::from_secs(1),
            exec_model: ExecutionTimeModel::default(),
            seed: 0,
            warmup: Duration::ZERO,
            record_trace: false,
            semantics: CommunicationSemantics::default(),
            fault: FaultPlan::default(),
        }
    }
}

/// What a simulation run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregated observations (disparity, backward times, response times).
    pub metrics: ObservedMetrics,
    /// The full trace, if recording was enabled.
    pub trace: Option<Trace>,
    /// What fault injection actually did (all zero without a plan).
    pub faults: FaultSummary,
}

/// A configured simulator for one graph.
///
/// # Examples
///
/// ```
/// use disparity_model::prelude::*;
/// use disparity_sim::engine::{SimConfig, Simulator};
///
/// let mut b = SystemBuilder::new();
/// let ecu = b.add_ecu("e");
/// let ms = Duration::from_millis;
/// let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
/// let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
/// let fuse = b.add_task(TaskSpec::periodic("fuse", ms(30)).execution(ms(1), ms(2)).on_ecu(ecu));
/// b.connect(s1, fuse);
/// b.connect(s2, fuse);
/// let g = b.build()?;
///
/// let mut sim = Simulator::new(&g, SimConfig::default());
/// sim.monitor_chain(Chain::new(&g, vec![s1, fuse])?);
/// let outcome = sim.run()?;
/// let disparity = outcome.metrics.max_disparity(fuse);
/// assert!(disparity.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulator<'g> {
    graph: &'g CauseEffectGraph,
    config: SimConfig,
    chains: Vec<Chain>,
}

impl<'g> Simulator<'g> {
    /// Creates a simulator over `graph`.
    #[must_use]
    pub fn new(graph: &'g CauseEffectGraph, config: SimConfig) -> Self {
        Simulator {
            graph,
            config,
            chains: Vec::new(),
        }
    }

    /// Registers a chain whose backward times should be observed; returns
    /// the chain's id within the run's metrics.
    pub fn monitor_chain(&mut self, chain: Chain) -> usize {
        self.chains.push(chain);
        self.chains.len() - 1
    }

    /// Registers several chains at once.
    pub fn monitor_chains<I: IntoIterator<Item = Chain>>(&mut self, chains: I) {
        self.chains.extend(chains);
    }

    /// The monitored chains, in registration (id) order.
    #[must_use]
    pub fn monitored_chains(&self) -> &[Chain] {
        &self.chains
    }

    /// Runs the simulation.
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidHorizon`] / [`SimError::InvalidWarmup`] for
    ///   nonsensical spans.
    /// * [`SimError::Model`] if a monitored chain is not a path of the
    ///   graph.
    pub fn run(&self) -> Result<SimOutcome, SimError> {
        if !self.config.horizon.is_positive() {
            return Err(SimError::InvalidHorizon {
                horizon_nanos: self.config.horizon.as_nanos(),
            });
        }
        if self.config.warmup.is_negative() || self.config.warmup >= self.config.horizon {
            return Err(SimError::InvalidWarmup {
                warmup_nanos: self.config.warmup.as_nanos(),
            });
        }
        self.config.fault.validate()?;
        for chain in &self.chains {
            // Re-validate against this graph (chains are cheap to check).
            Chain::new(self.graph, chain.tasks().to_vec())?;
        }
        let mut engine = Engine::new(self.graph, &self.config, &self.chains);
        Ok(engine.run())
    }
}

/// Where a monitored chain gets its upstream stamp when a job of the
/// producing task writes into a channel.
#[derive(Debug, Clone, Copy)]
struct ChainHop {
    chain: usize,
    /// `None` when the producer is the chain's head (stamp = own release).
    upstream: Option<ChannelId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A running job on this ECU completes. Sorted before releases.
    Finish(usize),
    /// A LET job's output becomes visible (release + period). Sorted
    /// before releases so a reader releasing at the publish instant sees
    /// the fresh token.
    Publish(u32, usize),
    /// A task releases its next job. `u32` is the topological position so
    /// that zero-cost cascades at one instant resolve upstream-first.
    Release(u32, usize),
    /// An ECU's stall window ends. No handler work — dispatch runs after
    /// every event batch anyway; the event only wakes the loop up.
    Resume(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: Instant,
    kind: EventKind,
    seq: u64,
}

#[derive(Debug)]
struct RunningJob {
    job: JobRef,
    release: Instant,
    start: Instant,
    sources: SourceMap,
    /// Chain stamps to attach per outgoing channel.
    out_stamps: BTreeMap<ChannelId, BTreeMap<usize, Instant>>,
    reads: Vec<ReadRecord>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyKey {
    priority: Priority,
    release: Instant,
    seq: u64,
}

struct Engine<'g> {
    graph: &'g CauseEffectGraph,
    config: SimConfig,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    buffers: Vec<VecDeque<SharedToken>>,
    ready: Vec<BTreeMap<ReadyKey, (JobRef, Instant)>>,
    running: Vec<Option<RunningJob>>,
    pending_publishes: Vec<std::collections::VecDeque<RunningJob>>,
    next_index: Vec<u64>,
    topo_pos: Vec<u32>,
    hops_per_channel: Vec<Vec<ChainHop>>,
    tails_per_channel: Vec<Vec<usize>>,
    rng: StdRng,
    metrics: ObservedMetrics,
    trace: Option<Trace>,
    warmup_at: Instant,
    /// Next *nominal* (jitter-free) release instant per task; jitter is
    /// applied relative to this grid so it never accumulates.
    nominal_next: Vec<Instant>,
    /// Pending stall-resume event per ECU, to avoid duplicates.
    resume_scheduled: Vec<Option<Instant>>,
    faults: FaultSummary,
    /// Events dispatched from the heap (local tally, flushed to the obs
    /// layer at the end of the run when recording is enabled).
    events: u64,
    /// Tokens actually written into channel buffers.
    tokens_produced: u64,
}

impl<'g> Engine<'g> {
    fn new(graph: &'g CauseEffectGraph, config: &SimConfig, chains: &[Chain]) -> Self {
        let n_tasks = graph.task_count();
        let n_channels = graph.channel_count();
        let mut topo_pos = vec![0u32; n_tasks];
        for (pos, &t) in graph.topological_order().iter().enumerate() {
            topo_pos[t.index()] = pos as u32;
        }
        let mut hops_per_channel: Vec<Vec<ChainHop>> = vec![Vec::new(); n_channels];
        let mut tails_per_channel: Vec<Vec<usize>> = vec![Vec::new(); n_channels];
        for (chain_id, chain) in chains.iter().enumerate() {
            let edges: Vec<(TaskId, TaskId)> = chain.edges().collect();
            for (j, &(u, v)) in edges.iter().enumerate() {
                let ch = graph
                    .channel_between(u, v)
                    .expect("monitored chains are validated")
                    .id();
                let upstream = if j == 0 {
                    None
                } else {
                    let (pu, pv) = edges[j - 1];
                    Some(
                        graph
                            .channel_between(pu, pv)
                            .expect("monitored chains are validated")
                            .id(),
                    )
                };
                hops_per_channel[ch.index()].push(ChainHop {
                    chain: chain_id,
                    upstream,
                });
                if j + 1 == edges.len() {
                    tails_per_channel[ch.index()].push(chain_id);
                }
            }
        }
        Engine {
            graph,
            config: *config,
            heap: BinaryHeap::new(),
            seq: 0,
            buffers: vec![VecDeque::new(); n_channels],
            ready: vec![BTreeMap::new(); graph.ecus().len().max(1)],
            running: (0..graph.ecus().len().max(1)).map(|_| None).collect(),
            pending_publishes: (0..n_tasks)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            next_index: vec![0; n_tasks],
            topo_pos,
            hops_per_channel,
            tails_per_channel,
            rng: StdRng::seed_from_u64(config.seed),
            metrics: ObservedMetrics::new(n_tasks, chains.len()),
            trace: config.record_trace.then(|| Trace::new(n_tasks)),
            warmup_at: Instant::ZERO + config.warmup,
            nominal_next: vec![Instant::ZERO; n_tasks],
            resume_scheduled: vec![None; graph.ecus().len().max(1)],
            faults: FaultSummary::default(),
            events: 0,
            tokens_produced: 0,
        }
    }

    /// Schedules the release event for the job whose nominal release is
    /// `nominal`, applying (bounded) activation jitter. Returns the next
    /// nominal release.
    fn schedule_release(&mut self, task_id: TaskId, nominal: Instant) {
        let task = self.graph.task(task_id);
        let mut jitter = self.config.fault.draw_release_jitter(&mut self.rng);
        if jitter.is_positive() {
            // Keep releases strictly increasing per task: a job never
            // releases after its successor's nominal instant.
            jitter = jitter.min(task.period() - Duration::from_nanos(1));
            self.faults.jittered_releases += 1;
        }
        self.nominal_next[task_id.index()] = nominal + task.period();
        self.push_event(
            nominal + jitter,
            EventKind::Release(self.topo_pos[task_id.index()], task_id.index()),
        );
    }

    fn push_event(&mut self, time: Instant, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            kind,
            seq: self.seq,
        }));
    }

    fn run(&mut self) -> SimOutcome {
        let mut span = disparity_obs::span("sim.run");
        span.attr("horizon_ns", self.config.horizon);
        span.attr("seed", self.config.seed);
        let end = Instant::ZERO + self.config.horizon;
        for id in 0..self.graph.task_count() {
            let task_id = TaskId::from_index(id);
            let first = Instant::ZERO + self.graph.task(task_id).offset();
            if first < end {
                self.schedule_release(task_id, first);
            }
        }
        while let Some(Reverse(ev)) = self.heap.peek().copied() {
            if ev.time >= end {
                break;
            }
            let now = ev.time;
            while let Some(Reverse(ev)) = self.heap.peek().copied() {
                if ev.time != now {
                    break;
                }
                self.heap.pop();
                self.events += 1;
                match ev.kind {
                    EventKind::Finish(ecu) => self.handle_finish(ecu, now),
                    EventKind::Publish(_, task) => {
                        self.handle_publish(TaskId::from_index(task), now);
                    }
                    EventKind::Release(_, task) => {
                        self.handle_release(TaskId::from_index(task), now, end);
                    }
                    EventKind::Resume(ecu) => {
                        self.resume_scheduled[ecu] = None;
                    }
                }
            }
            for ecu in 0..self.running.len() {
                self.dispatch(ecu, now);
            }
        }
        if disparity_obs::is_enabled() {
            self.flush_obs_counters();
        }
        SimOutcome {
            metrics: std::mem::take(&mut self.metrics),
            trace: self.trace.take(),
            faults: self.faults,
        }
    }

    /// Publishes the run's tallies: engine events dispatched, tokens
    /// produced/dropped, and fault injections by kind.
    fn flush_obs_counters(&self) {
        disparity_obs::counter_add("sim.events", self.events);
        disparity_obs::counter_add("sim.tokens_produced", self.tokens_produced);
        disparity_obs::counter_add("sim.tokens_dropped", self.faults.dropped_tokens);
        disparity_obs::counter_add(
            "sim.faults.jittered_releases",
            self.faults.jittered_releases,
        );
        disparity_obs::counter_add(
            "sim.faults.overruns_beyond_wcet",
            self.faults.overruns_beyond_wcet,
        );
        disparity_obs::counter_add(
            "sim.faults.stalled_dispatches",
            self.faults.stalled_dispatches,
        );
    }

    fn handle_release(&mut self, task_id: TaskId, now: Instant, end: Instant) {
        let task = self.graph.task(task_id);
        let index = self.next_index[task_id.index()];
        self.next_index[task_id.index()] += 1;
        let next = self.nominal_next[task_id.index()];
        if next < end {
            self.schedule_release(task_id, next);
        }
        let job = JobRef {
            task: task_id,
            index,
        };
        if self.config.semantics == CommunicationSemantics::LogicalExecutionTime {
            // LET: read at release, publish one period later; CPU
            // contention cannot influence the dataflow, so no dispatch.
            let prepared = self.start_job(job, now, now);
            self.pending_publishes[task_id.index()].push_back(prepared);
            self.push_event(
                now + task.period(),
                EventKind::Publish(self.topo_pos[task_id.index()], task_id.index()),
            );
            return;
        }
        if task.is_zero_cost() {
            // Off-CPU stimulus or forwarding hop: start and finish at `now`.
            let started = self.start_job(job, now, now);
            self.complete_job(started, now);
        } else {
            let ecu = task.ecu().expect("costly tasks are mapped").index();
            self.seq += 1;
            self.ready[ecu].insert(
                ReadyKey {
                    priority: task.priority(),
                    release: now,
                    seq: self.seq,
                },
                (job, now),
            );
        }
    }

    /// Makes a LET job's output visible and records its trace entry
    /// (spanning the job's logical execution interval).
    fn handle_publish(&mut self, task_id: TaskId, now: Instant) {
        let mut prepared = self.pending_publishes[task_id.index()]
            .pop_front()
            .expect("publish events match queued prepared outputs");
        self.write_tokens(&mut prepared, now);
        if let Some(trace) = &mut self.trace {
            trace.push(JobRecord {
                job: prepared.job,
                release: prepared.release,
                start: prepared.release,
                finish: now,
                reads: std::mem::take(&mut prepared.reads),
            });
        }
    }

    /// The end of the stall window covering `now`, if the ECU may not
    /// start new jobs at this instant.
    fn stall_ends_at(&self, now: Instant) -> Option<Instant> {
        let stall = self.config.fault.stall?;
        if !stall.duration.is_positive() {
            return None;
        }
        let elapsed = now - Instant::ZERO;
        let phase = Duration::from_nanos(elapsed.as_nanos().rem_euclid(stall.interval.as_nanos()));
        (phase < stall.duration).then(|| now + (stall.duration - phase))
    }

    fn dispatch(&mut self, ecu: usize, now: Instant) {
        if self.running[ecu].is_some() {
            return;
        }
        if self.ready[ecu].is_empty() {
            return;
        }
        if let Some(resume_at) = self.stall_ends_at(now) {
            // Transient ECU stall: ready jobs wait until the window ends.
            self.faults.stalled_dispatches += 1;
            if self.resume_scheduled[ecu] != Some(resume_at) {
                self.resume_scheduled[ecu] = Some(resume_at);
                self.push_event(resume_at, EventKind::Resume(ecu));
            }
            return;
        }
        let Some((&key, _)) = self.ready[ecu].iter().next() else {
            return;
        };
        let (job, release) = self.ready[ecu].remove(&key).expect("key just observed");
        let started = self.start_job(job, release, now);
        let task = self.graph.task(job.task);
        let drawn = self.config.exec_model.draw(task, job.index, &mut self.rng);
        let (perturbed, overran) = self.config.fault.perturb_exec(task, drawn, &mut self.rng);
        if overran {
            self.faults.overruns_beyond_wcet += 1;
        }
        // Costly tasks run for >= 1ns: a token write is strictly after the
        // job's reads, keeping tie-breaking unambiguous — so a dispatched
        // job always occupies the ECU past `now` and at most one job can
        // start per ECU per instant.
        let exec = perturbed.max(Duration::from_nanos(1));
        self.running[ecu] = Some(started);
        self.push_event(now + exec, EventKind::Finish(ecu));
    }

    /// Performs the read phase of a job: peeks every input channel, merges
    /// provenance, records chain observations and the disparity sample.
    fn start_job(&mut self, job: JobRef, release: Instant, now: Instant) -> RunningJob {
        let task_id = job.task;
        let mut sources = SourceMap::new();
        let mut reads = Vec::new();
        let mut read_tokens: BTreeMap<ChannelId, SharedToken> = BTreeMap::new();
        for &ch in self.graph.in_channels(task_id) {
            let token = self.buffers[ch.index()].front().cloned();
            reads.push(ReadRecord {
                channel: ch,
                producer: token.as_ref().map(|t| t.produced_by),
            });
            if let Some(token) = token {
                merge_sources(&mut sources, &token.sources);
                read_tokens.insert(ch, token);
            }
        }
        if self.graph.is_source(task_id) {
            sources.insert(task_id, SourceStamp::point(release));
        }

        // Chain tail observations: backward time = r(tail) − traced stamp.
        for (&ch, token) in &read_tokens {
            for &chain_id in &self.tails_per_channel[ch.index()] {
                if now >= self.warmup_at {
                    match token.chain_stamps.get(&chain_id) {
                        Some(&stamp) => {
                            self.metrics.record_backward(chain_id, release - stamp);
                        }
                        None => self.metrics.record_missing_read(chain_id),
                    }
                }
            }
        }
        // Missing-read accounting for tail channels that were empty.
        for r in &reads {
            if r.producer.is_none() && now >= self.warmup_at {
                for &chain_id in &self.tails_per_channel[r.channel.index()] {
                    self.metrics.record_missing_read(chain_id);
                }
            }
        }

        if now >= self.warmup_at {
            if let Some(spread) = source_spread(&sources) {
                self.metrics.record_disparity(task_id, spread);
            }
        }

        // Precompute the chain stamps each outgoing channel will carry.
        let mut out_stamps: BTreeMap<ChannelId, BTreeMap<usize, Instant>> = BTreeMap::new();
        for &out in self.graph.out_channels(task_id) {
            let mut stamps = BTreeMap::new();
            for hop in &self.hops_per_channel[out.index()] {
                match hop.upstream {
                    None => {
                        stamps.insert(hop.chain, release);
                    }
                    Some(up) => {
                        if let Some(stamp) = read_tokens
                            .get(&up)
                            .and_then(|t| t.chain_stamps.get(&hop.chain).copied())
                        {
                            stamps.insert(hop.chain, stamp);
                        }
                    }
                }
            }
            out_stamps.insert(out, stamps);
        }

        RunningJob {
            job,
            release,
            start: now,
            sources,
            out_stamps,
            reads,
        }
    }

    /// Writes one token per outgoing channel (FIFO eviction included),
    /// except tokens lost to injected sensor dropout.
    fn write_tokens(&mut self, running: &mut RunningJob, now: Instant) {
        for &out in self.graph.out_channels(running.job.task) {
            if self.config.fault.drop_token(&mut self.rng) {
                self.faults.dropped_tokens += 1;
                running.out_stamps.remove(&out);
                continue;
            }
            let token = Rc::new(Token {
                produced_by: running.job,
                producer_release: running.release,
                produced_at: now,
                sources: running.sources.clone(),
                chain_stamps: running.out_stamps.remove(&out).unwrap_or_default(),
            });
            let capacity = self.graph.channel(out).capacity();
            let buf = &mut self.buffers[out.index()];
            if buf.len() == capacity {
                buf.pop_front();
            }
            buf.push_back(token);
            self.tokens_produced += 1;
        }
    }

    /// Performs the write phase of a job and the bookkeeping at its finish.
    fn complete_job(&mut self, mut running: RunningJob, now: Instant) {
        self.write_tokens(&mut running, now);
        self.metrics.record_response(
            running.job.task,
            now - running.release,
            running.start - running.release,
        );
        if let Some(trace) = &mut self.trace {
            trace.push(JobRecord {
                job: running.job,
                release: running.release,
                start: running.start,
                finish: now,
                reads: std::mem::take(&mut running.reads),
            });
        }
    }

    fn handle_finish(&mut self, ecu: usize, now: Instant) {
        let running = self.running[ecu]
            .take()
            .expect("finish implies a running job");
        self.complete_job(running, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ExecFault;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn two_sensor_fusion() -> (CauseEffectGraph, [TaskId; 3]) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)));
        let fuse = b.add_task(
            TaskSpec::periodic("fuse", ms(30))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s1, fuse);
        b.connect(s2, fuse);
        (b.build().unwrap(), [s1, s2, fuse])
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, [s1, _, fuse]) = two_sensor_fusion();
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                &g,
                SimConfig {
                    seed,
                    ..Default::default()
                },
            );
            sim.monitor_chain(Chain::new(&g, vec![s1, fuse]).unwrap());
            let out = sim.run().unwrap();
            (
                out.metrics.max_disparity(fuse),
                out.metrics.chain(0).max_backward,
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn rejects_bad_horizon_and_warmup() {
        let (g, _) = two_sensor_fusion();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: Duration::ZERO,
                ..Default::default()
            },
        );
        assert!(matches!(sim.run(), Err(SimError::InvalidHorizon { .. })));
        let sim = Simulator::new(
            &g,
            SimConfig {
                warmup: Duration::from_secs(2),
                ..Default::default()
            },
        );
        assert!(matches!(sim.run(), Err(SimError::InvalidWarmup { .. })));
    }

    #[test]
    fn rejects_foreign_chain() {
        let (g, [s1, s2, _]) = two_sensor_fusion();
        let mut sim = Simulator::new(&g, SimConfig::default());
        // s1 -> s2 is not an edge; construct via unchecked path through a
        // different graph's Chain is impossible, so check the validation by
        // monitoring a chain built from another graph's layout.
        let (g2, [a, _, f2]) = two_sensor_fusion();
        let foreign = Chain::new(&g2, vec![a, f2]).unwrap();
        sim.monitor_chain(foreign);
        // Same shape, so it validates fine — instead check a broken one by
        // constructing with new_unchecked-equivalent: skip; assert Chain::new fails.
        assert!(Chain::new(&g, vec![s1, s2]).is_err());
        assert!(sim.run().is_ok());
    }

    #[test]
    fn source_jobs_stamp_their_release() {
        let (g, [s1, s2, fuse]) = two_sensor_fusion();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(100),
                record_trace: true,
                ..Default::default()
            },
        );
        sim.monitor_chain(Chain::new(&g, vec![s1, fuse]).unwrap());
        sim.monitor_chain(Chain::new(&g, vec![s2, fuse]).unwrap());
        let out = sim.run().unwrap();
        let trace = out.trace.unwrap();
        // 10 source jobs of s1 (0..100ms at 10ms), 4 of s2? 100/30 -> 0,30,60,90 = 4.
        assert_eq!(trace.jobs_of(s1).len(), 10);
        assert_eq!(trace.jobs_of(s2).len(), 4);
        for j in trace.jobs_of(s1) {
            assert_eq!(j.start, j.release);
            assert_eq!(j.finish, j.release);
        }
    }

    #[test]
    fn fuse_reads_latest_available_tokens() {
        let (g, [s1, _s2, fuse]) = two_sensor_fusion();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(100),
                exec_model: ExecutionTimeModel::WorstCase,
                record_trace: true,
                ..Default::default()
            },
        );
        sim.monitor_chain(Chain::new(&g, vec![s1, fuse]).unwrap());
        let out = sim.run().unwrap();
        let trace = out.trace.unwrap();
        // fuse job 0 releases at 0 and starts at 0: both sources released
        // at 0, tokens written at 0 (finishes before dispatch), so reads
        // find producer index 0 on both channels.
        let f0 = &trace.jobs_of(fuse)[0];
        assert_eq!(f0.reads.len(), 2);
        for r in &f0.reads {
            assert_eq!(r.producer.map(|p| p.index), Some(0));
        }
        // fuse job 1 releases at 30: s1 produced 0..3 (released 0,10,20,30);
        // the register holds the newest = index 3.
        let f1 = &trace.jobs_of(fuse)[1];
        let s1_ch = g.channel_between(s1, fuse).unwrap().id();
        let read = f1.read_on(s1_ch).unwrap();
        assert_eq!(read.producer.map(|p| p.index), Some(3));
        // Backward time for chain s1->fuse: r(fuse#k) - r(s1#k*3...) = 0.
        let c = out.metrics.chain(0);
        assert_eq!(c.max_backward, Some(Duration::ZERO));
        assert_eq!(c.min_backward, Some(Duration::ZERO));
    }

    #[test]
    fn disparity_observed_matches_hand_computation() {
        let (g, [_, _, fuse]) = two_sensor_fusion();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(300),
                exec_model: ExecutionTimeModel::WorstCase,
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        // At each fuse release k*30 both sensors just fired (30 divisible
        // by 10 and 30): timestamps equal -> disparity 0 throughout.
        assert_eq!(out.metrics.max_disparity(fuse), Some(Duration::ZERO));
    }

    #[test]
    fn offset_shifts_sampling() {
        // Shift s2 by 5ms: fuse at 30 reads s1@30 and s2@(5+0? releases 5,35,..)
        // at fuse release 30 the newest s2 token is 5 -> disparity 25ms.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s1 = b.add_task(TaskSpec::periodic("s1", ms(10)));
        let s2 = b.add_task(TaskSpec::periodic("s2", ms(30)).offset(ms(5)));
        let fuse = b.add_task(
            TaskSpec::periodic("fuse", ms(30))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        b.connect(s1, fuse);
        b.connect(s2, fuse);
        let g = b.build().unwrap();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(300),
                warmup: ms(40),
                exec_model: ExecutionTimeModel::WorstCase,
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        assert_eq!(out.metrics.max_disparity(fuse), Some(ms(25)));
    }

    #[test]
    fn fifo_buffer_delays_tokens() {
        // s -> t with capacity 3: in steady state t reads data 2 periods old.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        b.connect_with_capacity(s, t, 3);
        let g = b.build().unwrap();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(500),
                warmup: ms(100),
                exec_model: ExecutionTimeModel::WorstCase,
                ..Default::default()
            },
        );
        sim.monitor_chain(Chain::new(&g, vec![s, t]).unwrap());
        let out = sim.run().unwrap();
        let c = out.metrics.chain(0);
        assert_eq!(c.min_backward, Some(ms(20)));
        assert_eq!(c.max_backward, Some(ms(20)));
        assert_eq!(c.missing_reads, 0);
    }

    #[test]
    fn let_publish_is_visible_at_exactly_one_period() {
        // s (T=10) -> t (T=10), both offset 0, LET semantics.
        // t's job at k*10 reads the token s published at k*10, whose
        // stamp is the release one period earlier: backward time = 10ms.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(200),
                warmup: ms(50),
                semantics: CommunicationSemantics::LogicalExecutionTime,
                ..Default::default()
            },
        );
        sim.monitor_chain(Chain::new(&g, vec![s, t]).unwrap());
        let out = sim.run().unwrap();
        let obs = out.metrics.chain(0);
        assert_eq!(obs.min_backward, Some(ms(10)));
        assert_eq!(obs.max_backward, Some(ms(10)));
    }

    #[test]
    fn let_phase_shift_lands_inside_window() {
        // Reader offset 3ms behind the publish grid: backward time 13ms,
        // still inside [T, 2T) = [10, 20).
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(2))
                .offset(ms(3))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(200),
                warmup: ms(50),
                semantics: CommunicationSemantics::LogicalExecutionTime,
                ..Default::default()
            },
        );
        sim.monitor_chain(Chain::new(&g, vec![s, t]).unwrap());
        let out = sim.run().unwrap();
        let obs = out.metrics.chain(0);
        assert_eq!(obs.min_backward, Some(ms(13)));
        assert_eq!(obs.max_backward, Some(ms(13)));
    }

    #[test]
    fn let_trace_records_logical_interval() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(1), ms(5))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(100),
                record_trace: true,
                semantics: CommunicationSemantics::LogicalExecutionTime,
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        let trace = out.trace.unwrap();
        for job in trace.jobs_of(t) {
            assert_eq!(job.start, job.release);
            assert_eq!(job.finish - job.release, ms(20), "LET interval = period");
        }
        // Publishes at horizon edge are dropped; released-but-unpublished
        // jobs simply do not appear.
        assert!(trace.jobs_of(t).len() <= 5);
        // CPU response metrics stay zero under LET.
        assert_eq!(out.metrics.max_response(t), Duration::ZERO);
    }

    #[test]
    fn run_rejects_invalid_fault_plan() {
        let (g, _) = two_sensor_fusion();
        let sim = Simulator::new(
            &g,
            SimConfig {
                fault: FaultPlan {
                    token_loss: Some(crate::fault::TokenLoss { permille: 9999 }),
                    ..FaultPlan::default()
                },
                ..Default::default()
            },
        );
        assert!(matches!(sim.run(), Err(SimError::InvalidFaultPlan { .. })));
    }

    #[test]
    fn jittered_releases_stay_on_the_nominal_grid() {
        let (g, [s1, _, _]) = two_sensor_fusion();
        let max = Duration::from_micros(700);
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(200),
                record_trace: true,
                fault: FaultPlan {
                    release_jitter: Some(crate::fault::ReleaseJitter {
                        max,
                        permille: 1000,
                    }),
                    ..FaultPlan::default()
                },
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        assert!(out.faults.jittered_releases > 0);
        assert!(out.faults.any_model_violation());
        let trace = out.trace.unwrap();
        let jobs = trace.jobs_of(s1);
        // Jitter is applied per release against the nominal grid, so the
        // k-th release sits in (k·T, k·T + max] and never drifts.
        assert_eq!(jobs.len(), 20, "no releases lost to jitter");
        for (k, job) in jobs.iter().enumerate() {
            let nominal = Instant::ZERO + ms(10) * i64::try_from(k).unwrap();
            assert!(job.release > nominal, "job {k} released at {}", job.release);
            assert!(job.release <= nominal + max, "job {k} drifted");
        }
    }

    #[test]
    fn ecu_stall_defers_dispatch() {
        // Stall the ECU for 4ms out of every 10ms. The fuse task releases
        // on the 30ms grid (inside each stall window), so every dispatch
        // waits for the window to end: start - release >= 4ms.
        let (g, [_, _, fuse]) = two_sensor_fusion();
        let stall = crate::fault::StallPlan {
            interval: ms(10),
            duration: ms(4),
        };
        let run = |fault: FaultPlan| {
            let sim = Simulator::new(
                &g,
                SimConfig {
                    horizon: ms(300),
                    exec_model: ExecutionTimeModel::WorstCase,
                    record_trace: true,
                    fault,
                    ..Default::default()
                },
            );
            sim.run().unwrap()
        };
        let clean = run(FaultPlan::none());
        assert_eq!(clean.faults.stalled_dispatches, 0);
        for job in clean.trace.as_ref().unwrap().jobs_of(fuse) {
            assert_eq!(job.start, job.release, "uncontended ECU starts at once");
        }
        let stalled = run(FaultPlan {
            stall: Some(stall),
            ..FaultPlan::default()
        });
        assert!(stalled.faults.stalled_dispatches > 0);
        assert!(stalled.faults.any_model_violation());
        for job in stalled.trace.as_ref().unwrap().jobs_of(fuse) {
            assert_eq!(job.start - job.release, ms(4), "held until window end");
        }
        assert_eq!(stalled.metrics.max_response(fuse), ms(6));
    }

    #[test]
    fn token_loss_produces_missing_reads() {
        let (g, [s1, _, fuse]) = two_sensor_fusion();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(300),
                exec_model: ExecutionTimeModel::WorstCase,
                fault: FaultPlan {
                    token_loss: Some(crate::fault::TokenLoss { permille: 1000 }),
                    ..FaultPlan::default()
                },
                ..Default::default()
            },
        );
        sim.monitor_chain(Chain::new(&g, vec![s1, fuse]).unwrap());
        let out = sim.run().unwrap();
        assert!(out.faults.dropped_tokens > 0);
        assert!(out.faults.any_model_violation());
        // Every token was lost, so the chain tail never observes a stamp.
        let obs = out.metrics.chain(0);
        assert!(obs.missing_reads > 0);
        assert_eq!(obs.max_backward, None);
    }

    #[test]
    fn overrun_beyond_wcet_is_flagged_and_visible() {
        let (g, [_, _, fuse]) = two_sensor_fusion();
        let wcet = g.task(fuse).wcet();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(300),
                exec_model: ExecutionTimeModel::WorstCase,
                fault: FaultPlan {
                    exec: ExecFault::OverrunBeyondWcet {
                        permille: 1000,
                        max_excess: ms(3),
                    },
                    ..FaultPlan::default()
                },
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        assert!(out.faults.overruns_beyond_wcet > 0);
        assert!(out.faults.any_model_violation());
        assert!(
            out.metrics.max_response(fuse) > wcet,
            "overrun must show up in the observed response time"
        );
    }

    #[test]
    fn exec_scale_fault_stays_model_preserving() {
        let (g, [_, _, fuse]) = two_sensor_fusion();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(300),
                exec_model: ExecutionTimeModel::Uniform,
                fault: FaultPlan {
                    exec: ExecFault::Scale { permille: 10_000 },
                    ..FaultPlan::default()
                },
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        assert!(!out.faults.any_model_violation());
        // 10x pressure saturates at the declared WCET, never beyond.
        assert_eq!(out.metrics.max_response(fuse), g.task(fuse).wcet());
    }

    #[test]
    fn fault_injection_is_deterministic_per_seed() {
        let (g, [s1, _, fuse]) = two_sensor_fusion();
        let fault = FaultPlan {
            release_jitter: Some(crate::fault::ReleaseJitter {
                max: ms(1),
                permille: 300,
            }),
            exec: ExecFault::OverrunBeyondWcet {
                permille: 200,
                max_excess: ms(2),
            },
            token_loss: Some(crate::fault::TokenLoss { permille: 100 }),
            stall: Some(crate::fault::StallPlan {
                interval: ms(50),
                duration: ms(2),
            }),
        };
        let run = |seed: u64| {
            let mut sim = Simulator::new(
                &g,
                SimConfig {
                    horizon: ms(400),
                    seed,
                    fault,
                    ..Default::default()
                },
            );
            sim.monitor_chain(Chain::new(&g, vec![s1, fuse]).unwrap());
            let out = sim.run().unwrap();
            (
                out.faults,
                out.metrics.max_disparity(fuse),
                out.metrics.chain(0).max_backward,
                out.metrics.chain(0).missing_reads,
            )
        };
        assert_eq!(run(11), run(11));
        assert!(run(11).0.any_model_violation(), "plan actually fired");
    }

    #[test]
    fn response_times_observed() {
        let (g, [_, _, fuse]) = two_sensor_fusion();
        let sim = Simulator::new(
            &g,
            SimConfig {
                exec_model: ExecutionTimeModel::WorstCase,
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        assert_eq!(out.metrics.max_response(fuse), ms(2));
    }
}
