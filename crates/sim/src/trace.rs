//! Recorded execution traces.
//!
//! When [`SimConfig::record_trace`](crate::engine::SimConfig) is set, the
//! simulator records one [`JobRecord`] per *completed* job: its release /
//! start / finish instants and, per input channel, which producer job's
//! token it read. Immediate backward job chains — and hence backward
//! times, data ages and disparities — can be reconstructed exactly from
//! these read-links (see [`crate::metrics`]).

use disparity_model::ids::{ChannelId, TaskId};
use disparity_model::time::Instant;

use crate::token::JobRef;

/// One observed read: what a starting job found at the head of one of its
/// input channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRecord {
    /// The input channel that was read.
    pub channel: ChannelId,
    /// The job whose token was read, or `None` if the channel was empty.
    pub producer: Option<JobRef>,
}

/// The lifecycle of one completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Which job this is.
    pub job: JobRef,
    /// Release time.
    pub release: Instant,
    /// Start time (equals `release` for zero-cost stimuli).
    pub start: Instant,
    /// Finish time.
    pub finish: Instant,
    /// One entry per input channel, in channel order.
    pub reads: Vec<ReadRecord>,
}

impl JobRecord {
    /// The read on the given channel, if the job has that input.
    #[must_use]
    pub fn read_on(&self, channel: ChannelId) -> Option<&ReadRecord> {
        self.reads.iter().find(|r| r.channel == channel)
    }

    /// Observed response time `finish − release`.
    #[must_use]
    pub fn response_time(&self) -> disparity_model::time::Duration {
        self.finish - self.release
    }
}

/// A full execution trace: completed jobs per task, in activation order.
///
/// Per task, records cover a gap-free prefix of activation indices (jobs of
/// one task complete in release order under non-preemptive FP), so
/// [`Trace::job`] is a direct index lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    jobs: Vec<Vec<JobRecord>>,
}

impl Trace {
    /// Creates an empty trace for `task_count` tasks.
    #[must_use]
    pub fn new(task_count: usize) -> Self {
        Trace {
            jobs: vec![Vec::new(); task_count],
        }
    }

    /// Appends a completed job (engine use).
    pub(crate) fn push(&mut self, record: JobRecord) {
        let lane = &mut self.jobs[record.job.task.index()];
        debug_assert_eq!(
            lane.len() as u64,
            record.job.index,
            "jobs of one task must complete in activation order"
        );
        lane.push(record);
    }

    /// The record of one job, if it completed within the horizon.
    #[must_use]
    pub fn job(&self, job: JobRef) -> Option<&JobRecord> {
        self.jobs.get(job.task.index())?.get(job.index as usize)
    }

    /// All completed jobs of one task, in activation order.
    #[must_use]
    pub fn jobs_of(&self, task: TaskId) -> &[JobRecord] {
        self.jobs.get(task.index()).map_or(&[], Vec::as_slice)
    }

    /// Total number of completed jobs.
    #[must_use]
    pub fn completed_jobs(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::time::Duration;

    fn record(task: usize, index: u64, release_ms: i64) -> JobRecord {
        JobRecord {
            job: JobRef {
                task: TaskId::from_index(task),
                index,
            },
            release: Instant::from_millis(release_ms),
            start: Instant::from_millis(release_ms + 1),
            finish: Instant::from_millis(release_ms + 3),
            reads: vec![],
        }
    }

    #[test]
    fn push_and_lookup() {
        let mut t = Trace::new(2);
        t.push(record(0, 0, 0));
        t.push(record(0, 1, 10));
        t.push(record(1, 0, 5));
        assert_eq!(t.completed_jobs(), 3);
        let j = t
            .job(JobRef {
                task: TaskId::from_index(0),
                index: 1,
            })
            .unwrap();
        assert_eq!(j.release, Instant::from_millis(10));
        assert_eq!(j.response_time(), Duration::from_millis(3));
        assert!(t
            .job(JobRef {
                task: TaskId::from_index(0),
                index: 2
            })
            .is_none());
        assert_eq!(t.jobs_of(TaskId::from_index(1)).len(), 1);
        assert!(t.jobs_of(TaskId::from_index(9)).is_empty());
    }

    #[test]
    fn read_on_finds_channel() {
        let mut r = record(0, 0, 0);
        r.reads.push(ReadRecord {
            channel: ChannelId::from_index(3),
            producer: None,
        });
        assert!(r.read_on(ChannelId::from_index(3)).is_some());
        assert!(r.read_on(ChannelId::from_index(4)).is_none());
    }
}
