//! Adversarial fault injection.
//!
//! A [`FaultPlan`] perturbs a simulation run to probe the robustness of
//! the analytical bounds. Faults come in two classes, and the class
//! decides what a soundness checker may assume afterwards:
//!
//! * **Model-preserving** faults keep every job inside the declared task
//!   model `(W, B, T)`. Execution-time overruns/underruns via
//!   [`ExecFault::Scale`] are re-clamped into `[B, W]`, so the paper's
//!   WCBT/BCBT (Lemmas 4–5) and disparity bounds (Theorems 1–3) must
//!   still hold — any observed violation is a real soundness bug.
//! * **Model-violating** faults step outside the model: release jitter
//!   (periods are no longer exact), execution beyond the declared WCET
//!   ([`ExecFault::OverrunBeyondWcet`]), token loss on channels, and
//!   transient ECU stalls. Runs with such faults must be *flagged* (see
//!   [`FaultSummary`]) rather than silently analyzed; the bounds can
//!   legitimately fail in either direction.
//!
//! All probabilities are expressed in permille (`0..=1000`) so
//! [`crate::engine::SimConfig`] stays `Copy + Eq` and fault plans are
//! exactly reproducible from their debug representation.
//!
//! # Examples
//!
//! ```
//! use disparity_model::time::Duration;
//! use disparity_sim::fault::{ExecFault, FaultPlan, ReleaseJitter};
//!
//! let benign = FaultPlan {
//!     exec: ExecFault::Scale { permille: 1_500 },
//!     ..FaultPlan::default()
//! };
//! assert!(benign.is_model_preserving());
//!
//! let adversarial = FaultPlan {
//!     release_jitter: Some(ReleaseJitter {
//!         max: Duration::from_millis(2),
//!         permille: 500,
//!     }),
//!     ..FaultPlan::default()
//! };
//! assert!(!adversarial.is_model_preserving());
//! ```

use disparity_model::task::Task;
use disparity_model::time::Duration;
use disparity_rng::{Rng, RngCore};

use crate::error::SimError;

/// Per-release activation jitter (model-violating).
///
/// Each release is delayed, with probability `permille`/1000, by a
/// uniformly drawn amount in `(0, max]`. Jitter is applied relative to
/// the task's *nominal* periodic grid, so it never accumulates across
/// jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReleaseJitter {
    /// Largest delay a single release can suffer.
    pub max: Duration,
    /// Probability (in permille) that a given release is jittered.
    pub permille: u32,
}

/// Sensor dropout / token loss on channels (model-violating).
///
/// Each token write is discarded with probability `permille`/1000, as if
/// the frame had been lost on the wire. Readers simply keep seeing the
/// previous token (or nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TokenLoss {
    /// Probability (in permille) that a written token is dropped.
    pub permille: u32,
}

/// Transient ECU stalls (model-violating).
///
/// Every `interval`, each ECU refuses to *start* new jobs for `duration`
/// (windows `[k·interval, k·interval + duration)`). Running jobs are not
/// preempted — the scheduler is non-preemptive — but ready jobs wait,
/// modelling a hypervisor pause, DMA storm or thermal throttle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StallPlan {
    /// Distance between stall-window starts.
    pub interval: Duration,
    /// Length of each stall window (must be shorter than `interval`).
    pub duration: Duration,
}

/// Execution-time perturbation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecFault {
    /// Execution times are drawn from the configured
    /// [`crate::exec::ExecutionTimeModel`] unchanged.
    #[default]
    None,
    /// Scales every drawn execution time by `permille`/1000, then clamps
    /// back into the task's declared `[B, W]`. Values above 1000 model
    /// overload pressure (times saturate at the WCET), below 1000 a
    /// fast path (times saturate at the BCET). **Model-preserving**: no
    /// job ever leaves its declared range.
    Scale {
        /// Multiplier in permille; 1000 is the identity.
        permille: u32,
    },
    /// With probability `permille`/1000, a job's execution time is forced
    /// *beyond* its declared WCET to `W + excess`, `excess` drawn
    /// uniformly from `(0, max_excess]`. **Model-violating**: the run
    /// must be flagged, not silently analyzed.
    OverrunBeyondWcet {
        /// Probability (in permille) that a given job overruns.
        permille: u32,
        /// Largest excess beyond the WCET.
        max_excess: Duration,
    },
}

/// A complete fault-injection plan for one simulation run.
///
/// The default plan injects nothing and is therefore model-preserving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Release jitter, if any.
    pub release_jitter: Option<ReleaseJitter>,
    /// Execution-time perturbation.
    pub exec: ExecFault,
    /// Token loss on channels, if any.
    pub token_loss: Option<TokenLoss>,
    /// Transient ECU stalls, if any.
    pub stall: Option<StallPlan>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    #[must_use]
    pub const fn none() -> Self {
        FaultPlan {
            release_jitter: None,
            exec: ExecFault::None,
            token_loss: None,
            stall: None,
        }
    }

    /// Whether every fault in this plan keeps jobs inside the declared
    /// task model, so the analytical bounds must still hold exactly.
    ///
    /// Faults configured with probability (or magnitude) zero are inert
    /// and do not count against preservation.
    #[must_use]
    pub fn is_model_preserving(&self) -> bool {
        let jitter_active = self
            .release_jitter
            .is_some_and(|j| j.permille > 0 && j.max.is_positive());
        let loss_active = self.token_loss.is_some_and(|l| l.permille > 0);
        let stall_active = self.stall.is_some_and(|s| s.duration.is_positive());
        let overrun_active = matches!(
            self.exec,
            ExecFault::OverrunBeyondWcet {
                permille,
                max_excess,
            } if permille > 0 && max_excess.is_positive()
        );
        !(jitter_active || loss_active || stall_active || overrun_active)
    }

    /// Validates magnitudes and probabilities.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] for out-of-range permille values,
    /// negative durations, or a stall window at least as long as its
    /// interval (the ECU would never run).
    pub fn validate(&self) -> Result<(), SimError> {
        let bad = |reason: &str| {
            Err(SimError::InvalidFaultPlan {
                reason: reason.to_string(),
            })
        };
        if let Some(j) = self.release_jitter {
            if j.permille > 1000 {
                return bad("release_jitter.permille must be <= 1000");
            }
            if j.max.is_negative() {
                return bad("release_jitter.max must be non-negative");
            }
        }
        match self.exec {
            ExecFault::None => {}
            ExecFault::Scale { permille } => {
                if permille == 0 {
                    return bad("exec scale of 0 would zero all execution times");
                }
            }
            ExecFault::OverrunBeyondWcet {
                permille,
                max_excess,
            } => {
                if permille > 1000 {
                    return bad("exec overrun permille must be <= 1000");
                }
                if max_excess.is_negative() {
                    return bad("exec overrun max_excess must be non-negative");
                }
            }
        }
        if let Some(l) = self.token_loss {
            if l.permille > 1000 {
                return bad("token_loss.permille must be <= 1000");
            }
        }
        if let Some(s) = self.stall {
            if !s.interval.is_positive() {
                return bad("stall.interval must be positive");
            }
            if s.duration.is_negative() {
                return bad("stall.duration must be non-negative");
            }
            if s.duration >= s.interval {
                return bad("stall.duration must be shorter than stall.interval");
            }
        }
        Ok(())
    }

    /// Draws the jitter to add to one nominal release. Returns
    /// [`Duration::ZERO`] when the release is unaffected.
    pub(crate) fn draw_release_jitter<R: RngCore + ?Sized>(&self, rng: &mut R) -> Duration {
        let Some(j) = self.release_jitter else {
            return Duration::ZERO;
        };
        if j.permille == 0 || !j.max.is_positive() || !hit(rng, j.permille) {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.gen_range(1..=j.max.as_nanos()))
    }

    /// Applies the execution-time fault to a drawn execution time.
    /// Returns the perturbed time and whether it deliberately exceeds
    /// the declared WCET.
    pub(crate) fn perturb_exec<R: RngCore + ?Sized>(
        &self,
        task: &Task,
        drawn: Duration,
        rng: &mut R,
    ) -> (Duration, bool) {
        match self.exec {
            ExecFault::None => (drawn, false),
            ExecFault::Scale { permille } => {
                let scaled = Duration::from_nanos(
                    (i128::from(drawn.as_nanos()) * i128::from(permille) / 1000)
                        .clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64,
                );
                (scaled.clamp(task.bcet(), task.wcet()), false)
            }
            ExecFault::OverrunBeyondWcet {
                permille,
                max_excess,
            } => {
                if permille > 0 && max_excess.is_positive() && hit(rng, permille) {
                    let excess = Duration::from_nanos(rng.gen_range(1..=max_excess.as_nanos()));
                    (task.wcet() + excess, true)
                } else {
                    (drawn, false)
                }
            }
        }
    }

    /// Whether one token write is dropped.
    pub(crate) fn drop_token<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        self.token_loss
            .is_some_and(|l| l.permille > 0 && hit(rng, l.permille))
    }
}

fn hit<R: RngCore + ?Sized>(rng: &mut R, permille: u32) -> bool {
    permille >= 1000 || rng.gen_range(0u32..1000) < permille
}

/// What fault injection actually did during a run.
///
/// A plan with non-zero probabilities may still inject nothing on a
/// short horizon; soundness tooling should consult both the plan's
/// [`FaultPlan::is_model_preserving`] (what *could* happen) and this
/// summary (what *did* happen).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Releases delayed by jitter.
    pub jittered_releases: u64,
    /// Jobs forced beyond their declared WCET.
    pub overruns_beyond_wcet: u64,
    /// Tokens discarded on write.
    pub dropped_tokens: u64,
    /// Dispatch opportunities deferred by an ECU stall window.
    pub stalled_dispatches: u64,
}

impl FaultSummary {
    /// Whether any model-violating fault actually fired.
    #[must_use]
    pub fn any_model_violation(&self) -> bool {
        self.jittered_releases > 0
            || self.overruns_beyond_wcet > 0
            || self.dropped_tokens > 0
            || self.stalled_dispatches > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disparity_model::task::TaskSpec;
    use disparity_rng::StdRng;

    fn task(bcet_ms: i64, wcet_ms: i64) -> Task {
        let mut b = disparity_model::builder::SystemBuilder::new();
        let e = b.add_ecu("e");
        let id = b.add_task(
            TaskSpec::periodic("t", Duration::from_millis(10))
                .execution(
                    Duration::from_millis(bcet_ms),
                    Duration::from_millis(wcet_ms),
                )
                .on_ecu(e),
        );
        b.build().expect("valid single-task system").task(id).clone()
    }

    #[test]
    fn default_plan_is_model_preserving_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_model_preserving());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn scale_is_model_preserving_and_clamped() {
        let plan = FaultPlan {
            exec: ExecFault::Scale { permille: 5000 },
            ..FaultPlan::default()
        };
        assert!(plan.is_model_preserving());
        let t = task(1, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let (exec, overrun) = plan.perturb_exec(&t, Duration::from_millis(2), &mut rng);
        assert_eq!(exec, t.wcet(), "5x of 2ms clamps to 3ms WCET");
        assert!(!overrun);
        let plan = FaultPlan {
            exec: ExecFault::Scale { permille: 100 },
            ..FaultPlan::default()
        };
        let (exec, _) = plan.perturb_exec(&t, Duration::from_millis(2), &mut rng);
        assert_eq!(exec, t.bcet(), "0.1x of 2ms clamps to 1ms BCET");
    }

    #[test]
    fn overrun_exceeds_wcet_and_is_flagged() {
        let plan = FaultPlan {
            exec: ExecFault::OverrunBeyondWcet {
                permille: 1000,
                max_excess: Duration::from_millis(4),
            },
            ..FaultPlan::default()
        };
        assert!(!plan.is_model_preserving());
        let t = task(1, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..32 {
            let (exec, overrun) = plan.perturb_exec(&t, Duration::from_millis(2), &mut rng);
            assert!(overrun);
            assert!(exec > t.wcet());
            assert!(exec <= t.wcet() + Duration::from_millis(4));
        }
    }

    #[test]
    fn zero_probability_faults_are_inert() {
        let plan = FaultPlan {
            release_jitter: Some(ReleaseJitter {
                max: Duration::from_millis(1),
                permille: 0,
            }),
            token_loss: Some(TokenLoss { permille: 0 }),
            exec: ExecFault::OverrunBeyondWcet {
                permille: 0,
                max_excess: Duration::from_millis(1),
            },
            stall: None,
        };
        assert!(plan.is_model_preserving());
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(plan.draw_release_jitter(&mut rng), Duration::ZERO);
        assert!(!plan.drop_token(&mut rng));
    }

    #[test]
    fn jitter_is_bounded() {
        let plan = FaultPlan {
            release_jitter: Some(ReleaseJitter {
                max: Duration::from_micros(500),
                permille: 1000,
            }),
            ..FaultPlan::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..64 {
            let j = plan.draw_release_jitter(&mut rng);
            assert!(j.is_positive());
            assert!(j <= Duration::from_micros(500));
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad_plans = [
            FaultPlan {
                release_jitter: Some(ReleaseJitter {
                    max: Duration::from_millis(1),
                    permille: 1001,
                }),
                ..FaultPlan::default()
            },
            FaultPlan {
                exec: ExecFault::Scale { permille: 0 },
                ..FaultPlan::default()
            },
            FaultPlan {
                token_loss: Some(TokenLoss { permille: 2000 }),
                ..FaultPlan::default()
            },
            FaultPlan {
                stall: Some(StallPlan {
                    interval: Duration::from_millis(5),
                    duration: Duration::from_millis(5),
                }),
                ..FaultPlan::default()
            },
            FaultPlan {
                stall: Some(StallPlan {
                    interval: Duration::ZERO,
                    duration: Duration::ZERO,
                }),
                ..FaultPlan::default()
            },
        ];
        for plan in bad_plans {
            assert!(
                matches!(plan.validate(), Err(SimError::InvalidFaultPlan { .. })),
                "{plan:?} should be rejected"
            );
        }
    }

    #[test]
    fn summary_flags_violations() {
        assert!(!FaultSummary::default().any_model_violation());
        assert!(FaultSummary {
            dropped_tokens: 1,
            ..FaultSummary::default()
        }
        .any_model_violation());
    }
}
