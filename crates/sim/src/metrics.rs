//! Aggregated observations from a simulation run, plus trace-based
//! recomputation utilities.
//!
//! The streaming observations (collected by the engine as jobs start and
//! finish) and the trace-based reconstructions (following recorded
//! read-links) are two independent implementations of the same paper
//! definitions; the test suite checks they agree.

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::ids::TaskId;
use disparity_model::time::Duration;

use crate::error::SimError;
use crate::token::JobRef;
use crate::trace::Trace;

/// Observed time-disparity statistics of one task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisparityObservation {
    /// Largest observed disparity sample.
    pub max: Duration,
    /// Number of samples (jobs with at least one traced source).
    pub samples: u64,
}

/// Observed backward-time statistics of one monitored chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainObservation {
    /// Smallest observed backward time.
    pub min_backward: Option<Duration>,
    /// Largest observed backward time.
    pub max_backward: Option<Duration>,
    /// Number of complete backward chains observed.
    pub samples: u64,
    /// Tail starts that found no traced stamp (empty channel or a gap
    /// upstream — e.g. before the pipeline filled).
    pub missing_reads: u64,
}

/// Everything a run observed, aggregated online.
#[derive(Debug, Clone, Default)]
pub struct ObservedMetrics {
    disparity: Vec<DisparityObservation>,
    chains: Vec<ChainObservation>,
    max_response: Vec<Duration>,
    max_start_delay: Vec<Duration>,
}

impl ObservedMetrics {
    /// Creates empty metrics for `tasks` tasks and `chains` monitored
    /// chains.
    #[must_use]
    pub fn new(tasks: usize, chains: usize) -> Self {
        ObservedMetrics {
            disparity: vec![DisparityObservation::default(); tasks],
            chains: vec![ChainObservation::default(); chains],
            max_response: vec![Duration::ZERO; tasks],
            max_start_delay: vec![Duration::ZERO; tasks],
        }
    }

    pub(crate) fn record_disparity(&mut self, task: TaskId, sample: Duration) {
        let obs = &mut self.disparity[task.index()];
        obs.max = obs.max.max(sample);
        obs.samples += 1;
    }

    pub(crate) fn record_backward(&mut self, chain: usize, sample: Duration) {
        let obs = &mut self.chains[chain];
        obs.min_backward = Some(obs.min_backward.map_or(sample, |m| m.min(sample)));
        obs.max_backward = Some(obs.max_backward.map_or(sample, |m| m.max(sample)));
        obs.samples += 1;
    }

    pub(crate) fn record_missing_read(&mut self, chain: usize) {
        self.chains[chain].missing_reads += 1;
    }

    pub(crate) fn record_response(&mut self, task: TaskId, response: Duration, delay: Duration) {
        let i = task.index();
        self.max_response[i] = self.max_response[i].max(response);
        self.max_start_delay[i] = self.max_start_delay[i].max(delay);
    }

    /// Largest observed time disparity of `task`, or `None` if no job of it
    /// ever traced a source (e.g. sampling never happened in the horizon).
    #[must_use]
    pub fn max_disparity(&self, task: TaskId) -> Option<Duration> {
        let obs = self.disparity.get(task.index())?;
        (obs.samples > 0).then_some(obs.max)
    }

    /// Full disparity statistics of `task`.
    ///
    /// # Panics
    ///
    /// Panics for a task id outside the simulated graph.
    #[must_use]
    pub fn disparity(&self, task: TaskId) -> DisparityObservation {
        self.disparity[task.index()]
    }

    /// Statistics of the monitored chain with the given id.
    ///
    /// # Panics
    ///
    /// Panics for an unknown chain id.
    #[must_use]
    pub fn chain(&self, chain: usize) -> ChainObservation {
        self.chains[chain]
    }

    /// Number of monitored chains.
    #[must_use]
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Largest observed response time of `task`.
    ///
    /// # Panics
    ///
    /// Panics for a task id outside the simulated graph.
    #[must_use]
    pub fn max_response(&self, task: TaskId) -> Duration {
        self.max_response[task.index()]
    }

    /// Largest observed release-to-start delay of `task`.
    ///
    /// # Panics
    ///
    /// Panics for a task id outside the simulated graph.
    #[must_use]
    pub fn max_start_delay(&self, task: TaskId) -> Duration {
        self.max_start_delay[task.index()]
    }

    /// Folds another run's observations into this one (the paper's
    /// protocol aggregates maxima over several offset-randomized runs of
    /// the same system).
    ///
    /// # Panics
    ///
    /// Panics if `other` was produced for a different graph or chain set
    /// (mismatched dimensions); see [`ObservedMetrics::try_merge`].
    pub fn merge(&mut self, other: &ObservedMetrics) {
        self.try_merge(other).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible form of [`ObservedMetrics::merge`].
    ///
    /// # Errors
    ///
    /// [`SimError::MetricsShapeMismatch`] when `other` was produced for a
    /// different graph or chain set; `self` is left untouched.
    pub fn try_merge(&mut self, other: &ObservedMetrics) -> Result<(), SimError> {
        if self.disparity.len() != other.disparity.len() || self.chains.len() != other.chains.len()
        {
            return Err(SimError::MetricsShapeMismatch {
                left: (self.disparity.len(), self.chains.len()),
                right: (other.disparity.len(), other.chains.len()),
            });
        }
        for (a, b) in self.disparity.iter_mut().zip(&other.disparity) {
            a.max = a.max.max(b.max);
            a.samples += b.samples;
        }
        for (a, b) in self.chains.iter_mut().zip(&other.chains) {
            a.min_backward = match (a.min_backward, b.min_backward) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            };
            a.max_backward = match (a.max_backward, b.max_backward) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            };
            a.samples += b.samples;
            a.missing_reads += b.missing_reads;
        }
        for (a, b) in self.max_response.iter_mut().zip(&other.max_response) {
            *a = (*a).max(*b);
        }
        for (a, b) in self.max_start_delay.iter_mut().zip(&other.max_start_delay) {
            *a = (*a).max(*b);
        }
        Ok(())
    }
}

/// Follows recorded read-links to reconstruct the immediate backward job
/// chain of the `index`-th job of `chain`'s tail, returning its backward
/// time `r(tail job) − r(source job)`.
///
/// Returns `None` when the job did not complete within the horizon or some
/// link is missing (empty channel at a read).
///
/// # Panics
///
/// Panics if `chain` is not a path of the graph the trace was recorded on.
#[must_use]
pub fn backward_time_from_trace(
    trace: &Trace,
    graph: &CauseEffectGraph,
    chain: &Chain,
    index: u64,
) -> Option<Duration> {
    try_backward_time_from_trace(trace, graph, chain, index).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`backward_time_from_trace`]: `Ok(None)` means the
/// walk is incomplete (job missing, empty channel), `Err` a structural
/// problem.
///
/// # Errors
///
/// [`SimError::Model`] wrapping
/// [`NotAChain`](disparity_model::error::ModelError::NotAChain) when an
/// edge of `chain` is not an edge of `graph` (the chain belongs to a
/// different graph than the trace).
pub fn try_backward_time_from_trace(
    trace: &Trace,
    graph: &CauseEffectGraph,
    chain: &Chain,
    index: u64,
) -> Result<Option<Duration>, SimError> {
    let tail = chain.tail();
    let Some(tail_record) = trace.job(JobRef { task: tail, index }) else {
        return Ok(None);
    };
    let mut current = tail_record;
    // Walk edges from the tail back to the head.
    for pos in (1..chain.len()).rev() {
        let (Some(consumer), Some(producer_task)) = (chain.get(pos), chain.get(pos - 1))
        else {
            return Ok(None);
        };
        debug_assert_eq!(current.job.task, consumer);
        let ch = graph
            .channel_between(producer_task, consumer)
            .ok_or(SimError::Model(
                disparity_model::error::ModelError::NotAChain {
                    from: producer_task,
                    to: consumer,
                },
            ))?
            .id();
        let Some(producer) = current.read_on(ch).and_then(|read| read.producer) else {
            return Ok(None);
        };
        let Some(record) = trace.job(producer) else {
            return Ok(None);
        };
        current = record;
    }
    Ok(Some(tail_record.release - current.release))
}

/// Reconstructs every observable backward time of `chain` from a trace and
/// returns `(min, max, samples)` over jobs whose start lies at or after
/// `warmup_index` tail activations.
///
/// # Panics
///
/// Panics if `chain` is not a path of the graph the trace was recorded on.
#[must_use]
pub fn backward_extrema_from_trace(
    trace: &Trace,
    graph: &CauseEffectGraph,
    chain: &Chain,
) -> (Option<Duration>, Option<Duration>, u64) {
    try_backward_extrema_from_trace(trace, graph, chain).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`backward_extrema_from_trace`].
///
/// # Errors
///
/// Same conditions as [`try_backward_time_from_trace`].
pub fn try_backward_extrema_from_trace(
    trace: &Trace,
    graph: &CauseEffectGraph,
    chain: &Chain,
) -> Result<(Option<Duration>, Option<Duration>, u64), SimError> {
    let mut min = None;
    let mut max = None;
    let mut samples = 0u64;
    for k in 0..trace.jobs_of(chain.tail()).len() as u64 {
        if let Some(len) = try_backward_time_from_trace(trace, graph, chain, k)? {
            min = Some(min.map_or(len, |m: Duration| m.min(len)));
            max = Some(max.map_or(len, |m: Duration| m.max(len)));
            samples += 1;
        }
    }
    Ok((min, max, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::exec::ExecutionTimeModel;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn record_and_query() {
        let mut m = ObservedMetrics::new(2, 1);
        let t0 = TaskId::from_index(0);
        assert_eq!(m.max_disparity(t0), None);
        m.record_disparity(t0, ms(3));
        m.record_disparity(t0, ms(1));
        assert_eq!(m.max_disparity(t0), Some(ms(3)));
        assert_eq!(m.disparity(t0).samples, 2);
        m.record_backward(0, ms(5));
        m.record_backward(0, ms(-1));
        m.record_missing_read(0);
        let c = m.chain(0);
        assert_eq!(c.min_backward, Some(ms(-1)));
        assert_eq!(c.max_backward, Some(ms(5)));
        assert_eq!(c.samples, 2);
        assert_eq!(c.missing_reads, 1);
        m.record_response(t0, ms(7), ms(2));
        m.record_response(t0, ms(4), ms(3));
        assert_eq!(m.max_response(t0), ms(7));
        assert_eq!(m.max_start_delay(t0), ms(3));
    }

    #[test]
    fn merge_folds_extrema_and_counts() {
        let t0 = TaskId::from_index(0);
        let mut a = ObservedMetrics::new(1, 1);
        a.record_disparity(t0, ms(3));
        a.record_backward(0, ms(5));
        a.record_response(t0, ms(4), ms(1));
        let mut b = ObservedMetrics::new(1, 1);
        b.record_disparity(t0, ms(7));
        b.record_backward(0, ms(-2));
        b.record_missing_read(0);
        b.record_response(t0, ms(2), ms(2));
        a.merge(&b);
        assert_eq!(a.max_disparity(t0), Some(ms(7)));
        assert_eq!(a.disparity(t0).samples, 2);
        let c = a.chain(0);
        assert_eq!(c.min_backward, Some(ms(-2)));
        assert_eq!(c.max_backward, Some(ms(5)));
        assert_eq!(c.samples, 2);
        assert_eq!(c.missing_reads, 1);
        assert_eq!(a.max_response(t0), ms(4));
        assert_eq!(a.max_start_delay(t0), ms(2));
    }

    #[test]
    fn merge_handles_empty_sides() {
        let t0 = TaskId::from_index(0);
        let mut a = ObservedMetrics::new(1, 1);
        let mut b = ObservedMetrics::new(1, 1);
        b.record_backward(0, ms(1));
        a.merge(&b);
        assert_eq!(a.chain(0).min_backward, Some(ms(1)));
        let empty = ObservedMetrics::new(1, 1);
        a.merge(&empty);
        assert_eq!(a.chain(0).max_backward, Some(ms(1)));
        assert_eq!(a.max_disparity(t0), None);
    }

    #[test]
    fn try_merge_rejects_shape_mismatch() {
        let t0 = TaskId::from_index(0);
        let mut a = ObservedMetrics::new(1, 1);
        a.record_disparity(t0, ms(3));
        let mut b = ObservedMetrics::new(2, 1);
        b.record_disparity(t0, ms(9));
        let err = a.try_merge(&b).unwrap_err();
        assert!(matches!(
            err,
            SimError::MetricsShapeMismatch {
                left: (1, 1),
                right: (2, 1),
            }
        ));
        // The receiver is untouched on error.
        assert_eq!(a.max_disparity(t0), Some(ms(3)));
        assert_eq!(a.disparity(t0).samples, 1);
    }

    #[test]
    fn streaming_and_trace_backward_times_agree() {
        // Three-stage pipeline with jitter.
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(1), ms(4))
                .on_ecu(e),
        );
        b.connect(s, a);
        b.connect(a, t);
        let g = b.build().unwrap();
        let chain = Chain::new(&g, vec![s, a, t]).unwrap();
        let mut sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(2000),
                exec_model: ExecutionTimeModel::Uniform,
                seed: 99,
                record_trace: true,
                ..Default::default()
            },
        );
        sim.monitor_chain(chain.clone());
        let out = sim.run().unwrap();
        let trace = out.trace.unwrap();
        let (min_t, max_t, n_t) = backward_extrema_from_trace(&trace, &g, &chain);
        let streamed = out.metrics.chain(0);
        assert_eq!(streamed.min_backward, min_t);
        assert_eq!(streamed.max_backward, max_t);
        // The trace sees every tail job that completed; streaming sees
        // every tail job that *started*. The counts can differ by the jobs
        // in flight at the horizon, but never by more than one.
        assert!(streamed.samples >= n_t);
        assert!(streamed.samples - n_t <= 1);
    }

    #[test]
    fn streaming_and_trace_agree_under_every_fault_kind() {
        use crate::fault::{ExecFault, FaultPlan, ReleaseJitter, StallPlan, TokenLoss};

        // One plan per fault kind, plus a combined plan, mirroring the
        // soak catalog. Each must keep the streamed extrema identical to
        // the trace-reconstructed ones.
        let plans: [(&str, FaultPlan); 7] = [
            ("none", FaultPlan::none()),
            (
                "jitter",
                FaultPlan {
                    release_jitter: Some(ReleaseJitter {
                        max: ms(2),
                        permille: 500,
                    }),
                    ..FaultPlan::none()
                },
            ),
            (
                "scale",
                FaultPlan {
                    exec: ExecFault::Scale { permille: 2000 },
                    ..FaultPlan::none()
                },
            ),
            (
                "overrun",
                FaultPlan {
                    exec: ExecFault::OverrunBeyondWcet {
                        permille: 200,
                        max_excess: ms(2),
                    },
                    ..FaultPlan::none()
                },
            ),
            (
                "token-loss",
                FaultPlan {
                    token_loss: Some(TokenLoss { permille: 100 }),
                    ..FaultPlan::none()
                },
            ),
            (
                "stall",
                FaultPlan {
                    stall: Some(StallPlan {
                        interval: ms(40),
                        duration: ms(3),
                    }),
                    ..FaultPlan::none()
                },
            ),
            (
                "combined",
                FaultPlan {
                    release_jitter: Some(ReleaseJitter {
                        max: ms(1),
                        permille: 300,
                    }),
                    exec: ExecFault::Scale { permille: 1500 },
                    token_loss: Some(TokenLoss { permille: 50 }),
                    stall: Some(StallPlan {
                        interval: ms(60),
                        duration: ms(2),
                    }),
                },
            ),
        ];

        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(1), ms(4))
                .on_ecu(e),
        );
        b.connect(s, a);
        b.connect(a, t);
        let g = b.build().unwrap();
        let chain = Chain::new(&g, vec![s, a, t]).unwrap();

        for (name, fault) in plans {
            let mut sim = Simulator::new(
                &g,
                SimConfig {
                    horizon: ms(2000),
                    exec_model: ExecutionTimeModel::Uniform,
                    seed: 7,
                    record_trace: true,
                    fault,
                    ..Default::default()
                },
            );
            sim.monitor_chain(chain.clone());
            let out = sim.run().unwrap();
            let trace = out.trace.unwrap();
            let (min_t, max_t, n_t) = backward_extrema_from_trace(&trace, &g, &chain);
            let streamed = out.metrics.chain(0);
            assert_eq!(streamed.min_backward, min_t, "min mismatch under {name}");
            assert_eq!(streamed.max_backward, max_t, "max mismatch under {name}");
            assert!(
                streamed.samples >= n_t && streamed.samples - n_t <= 1,
                "sample drift under {name}: streamed {} vs trace {}",
                streamed.samples,
                n_t
            );
            // Every tail start is accounted for: either it contributed a
            // backward sample or it was counted as a missing read.
            let tail_jobs = trace.jobs_of(chain.tail()).len() as u64;
            assert!(
                streamed.samples + streamed.missing_reads >= tail_jobs,
                "{name}: unaccounted tail jobs"
            );
        }
    }

    #[test]
    fn trace_reconstruction_rejects_foreign_chains() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(50),
                record_trace: true,
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        let trace = out.trace.unwrap();

        // A chain that is valid on its own graph but, by task index, walks
        // the edge 1 -> 0 — the reverse of the only edge `g` has. The tail
        // (index 0) has trace records, so the walk reaches the edge lookup
        // and must report `NotAChain` instead of panicking.
        let mut b2 = SystemBuilder::new();
        let e2 = b2.add_ecu("e");
        let x = b2.add_task(
            TaskSpec::periodic("x", ms(10))
                .execution(ms(1), ms(1))
                .on_ecu(e2),
        );
        let y = b2.add_task(TaskSpec::periodic("y", ms(10)));
        b2.connect(y, x);
        let g2 = b2.build().unwrap();
        let foreign = Chain::new(&g2, vec![y, x]).unwrap();
        assert!(try_backward_time_from_trace(&trace, &g, &foreign, 0).is_err());
        assert!(try_backward_extrema_from_trace(&trace, &g, &foreign).is_err());
    }

    #[test]
    fn trace_walks_fail_gracefully_on_missing_jobs() {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let t = b.add_task(
            TaskSpec::periodic("t", ms(10))
                .execution(ms(1), ms(1))
                .on_ecu(e),
        );
        b.connect(s, t);
        let g = b.build().unwrap();
        let chain = Chain::new(&g, vec![s, t]).unwrap();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(50),
                record_trace: true,
                ..Default::default()
            },
        );
        let out = sim.run().unwrap();
        let trace = out.trace.unwrap();
        assert!(backward_time_from_trace(&trace, &g, &chain, 9999).is_none());
    }
}
