//! Deterministic discrete-event simulator for cause-effect graphs.
//!
//! Reproduces the run-time behaviour of §II of the DATE 2023 time-disparity
//! paper: periodic tasks with release offsets, per-ECU non-preemptive
//! fixed-priority dispatching, implicit communication (read at start, write
//! at finish), register and FIFO channels, and full provenance tracking so
//! the paper's **Sim** series (observed maximum time disparity) and
//! per-chain backward times can be measured.
//!
//! * [`engine`] — the simulator itself ([`engine::Simulator`]).
//! * [`exec`] — execution-time models (worst/best/uniform/alternating).
//! * [`fault`] — adversarial fault injection (jitter, overruns, token
//!   loss, ECU stalls) with model-preserving/violating classification.
//! * [`token`] — data tokens and provenance (source-stamp intervals).
//! * [`trace`] — recorded job lifecycles and read-links.
//! * [`metrics`] — streamed observations and trace-based reconstruction.
//!
//! # Examples
//!
//! ```
//! use disparity_model::prelude::*;
//! use disparity_sim::prelude::*;
//!
//! let mut b = SystemBuilder::new();
//! let ecu = b.add_ecu("e");
//! let ms = Duration::from_millis;
//! let cam = b.add_task(TaskSpec::periodic("cam", ms(33)));
//! let imu = b.add_task(TaskSpec::periodic("imu", ms(5)));
//! let fuse = b.add_task(TaskSpec::periodic("fuse", ms(33)).execution(ms(2), ms(6)).on_ecu(ecu));
//! b.connect(cam, fuse);
//! b.connect(imu, fuse);
//! let g = b.build()?;
//!
//! let mut sim = Simulator::new(&g, SimConfig { horizon: ms(5_000), ..Default::default() });
//! sim.monitor_chain(Chain::new(&g, vec![cam, fuse])?);
//! let out = sim.run()?;
//! assert!(out.metrics.max_disparity(fuse).is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod endtoend;
pub mod engine;
pub mod error;
pub mod exec;
pub mod export;
pub mod fault;
pub mod metrics;
pub mod token;
pub mod trace;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::endtoend::{data_age_from_trace, max_data_age, max_reaction_time};
    pub use crate::engine::{CommunicationSemantics, SimConfig, SimOutcome, Simulator};
    pub use crate::error::SimError;
    pub use crate::exec::ExecutionTimeModel;
    pub use crate::export::{to_ascii_gantt, to_chrome_trace};
    pub use crate::fault::{
        ExecFault, FaultPlan, FaultSummary, ReleaseJitter, StallPlan, TokenLoss,
    };
    pub use crate::metrics::{
        backward_extrema_from_trace, backward_time_from_trace, try_backward_extrema_from_trace,
        try_backward_time_from_trace, ChainObservation, DisparityObservation, ObservedMetrics,
    };
    pub use crate::token::{JobRef, SourceStamp, Token};
    pub use crate::trace::{JobRecord, ReadRecord, Trace};
}
