//! Classic end-to-end latency metrics: data age and reaction time.
//!
//! The paper positions time disparity against the two end-to-end latencies
//! that dominate the cause-effect-chain literature; a complete toolkit
//! measures them from the same traces:
//!
//! * **Data age** of an output (footnote 2 of the paper):
//!   `f(π̄^{|π|}) − r(π̄¹)` — the backward time plus the tail's response
//!   time. How stale is the data behind an output?
//! * **Reaction time** of a stimulus: the span from a source job's release
//!   to the finish of the *first* tail job whose immediate backward job
//!   chain samples that job or a later one. How long until an input is
//!   reflected in some output?

use disparity_model::chain::Chain;
use disparity_model::graph::CauseEffectGraph;
use disparity_model::time::{Duration, Instant};

use crate::metrics::backward_time_from_trace;
use crate::token::JobRef;
use crate::trace::Trace;

/// Data age of the output produced by the `index`-th job of `chain`'s
/// tail: `finish(tail job) − release(traced source job)`.
///
/// Returns `None` when the job did not complete within the horizon or a
/// read link is missing.
///
/// # Panics
///
/// Panics if `chain` is not a path of the graph the trace was recorded on.
#[must_use]
pub fn data_age_from_trace(
    trace: &Trace,
    graph: &CauseEffectGraph,
    chain: &Chain,
    index: u64,
) -> Option<Duration> {
    let backward = backward_time_from_trace(trace, graph, chain, index)?;
    let tail = trace.job(JobRef {
        task: chain.tail(),
        index,
    })?;
    Some(backward + tail.response_time())
}

/// Maximum data age over every completed tail job of `chain`.
///
/// # Panics
///
/// Panics if `chain` is not a path of the graph the trace was recorded on.
#[must_use]
pub fn max_data_age(trace: &Trace, graph: &CauseEffectGraph, chain: &Chain) -> Option<Duration> {
    (0..trace.jobs_of(chain.tail()).len() as u64)
        .filter_map(|k| data_age_from_trace(trace, graph, chain, k))
        .max()
}

/// The traced source release of each completed tail job, in activation
/// order (`None` where the backward chain is incomplete).
fn traced_sources(trace: &Trace, graph: &CauseEffectGraph, chain: &Chain) -> Vec<Option<Instant>> {
    (0..trace.jobs_of(chain.tail()).len() as u64)
        .map(|k| {
            backward_time_from_trace(trace, graph, chain, k).and_then(|len| {
                let tail = trace.job(JobRef {
                    task: chain.tail(),
                    index: k,
                })?;
                Some(tail.release - len)
            })
        })
        .collect()
}

/// Maximum reaction time over the source jobs of `chain` that some
/// completed tail job reacted to.
///
/// For each source job `s`, the reaction is `finish(first tail job whose
/// traced source is released at or after r(s)) − r(s)`. Source jobs never
/// reacted to within the horizon are skipped (their reaction is
/// right-censored, not observed).
///
/// # Panics
///
/// Panics if `chain` is not a path of the graph the trace was recorded on.
#[must_use]
pub fn max_reaction_time(
    trace: &Trace,
    graph: &CauseEffectGraph,
    chain: &Chain,
) -> Option<Duration> {
    let sources = traced_sources(trace, graph, chain);
    let tail_jobs = trace.jobs_of(chain.tail());
    let source_jobs = trace.jobs_of(chain.head());
    let mut worst: Option<Duration> = None;
    let mut cursor = 0usize;
    for s in source_jobs {
        // Find the first tail job whose traced source is >= r(s). Traced
        // sources are non-decreasing, so the cursor never moves backwards.
        while cursor < tail_jobs.len() {
            match sources[cursor] {
                Some(b) if b >= s.release => break,
                _ => cursor += 1,
            }
        }
        let Some(tail) = tail_jobs.get(cursor) else {
            break;
        };
        let reaction = tail.finish - s.release;
        worst = Some(worst.map_or(reaction, |w| w.max(reaction)));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulator};
    use crate::exec::ExecutionTimeModel;
    use disparity_model::builder::SystemBuilder;
    use disparity_model::task::TaskSpec;

    fn ms(v: i64) -> Duration {
        Duration::from_millis(v)
    }

    fn pipeline() -> (CauseEffectGraph, Chain) {
        let mut b = SystemBuilder::new();
        let e = b.add_ecu("e");
        let s = b.add_task(TaskSpec::periodic("s", ms(10)));
        let a = b.add_task(
            TaskSpec::periodic("a", ms(10))
                .execution(ms(1), ms(2))
                .on_ecu(e),
        );
        let t = b.add_task(
            TaskSpec::periodic("t", ms(20))
                .execution(ms(1), ms(3))
                .on_ecu(e),
        );
        b.connect(s, a);
        b.connect(a, t);
        let g = b.build().unwrap();
        let chain = Chain::new(&g, vec![s, a, t]).unwrap();
        (g, chain)
    }

    fn traced(g: &CauseEffectGraph, exec: ExecutionTimeModel) -> Trace {
        let sim = Simulator::new(
            g,
            SimConfig {
                horizon: ms(1000),
                exec_model: exec,
                record_trace: true,
                seed: 5,
                ..Default::default()
            },
        );
        sim.run().unwrap().trace.unwrap()
    }

    #[test]
    fn data_age_is_backward_time_plus_response() {
        let (g, chain) = pipeline();
        let trace = traced(&g, ExecutionTimeModel::WorstCase);
        for k in 0..trace.jobs_of(chain.tail()).len() as u64 {
            if let Some(age) = data_age_from_trace(&trace, &g, &chain, k) {
                let len = backward_time_from_trace(&trace, &g, &chain, k).unwrap();
                assert!(age >= len);
                assert!(age - len <= ms(20), "tail response bounded by period here");
            }
        }
        assert!(max_data_age(&trace, &g, &chain).is_some());
    }

    #[test]
    fn reaction_time_exceeds_data_age_floor() {
        let (g, chain) = pipeline();
        let trace = traced(&g, ExecutionTimeModel::Uniform);
        let reaction = max_reaction_time(&trace, &g, &chain).unwrap();
        // A stimulus must at least traverse the pipeline once.
        assert!(reaction >= ms(2));
        // And it cannot exceed the trivial bound W(π)-ish + periods.
        assert!(reaction <= ms(100), "sanity ceiling, got {reaction}");
    }

    #[test]
    fn reaction_skips_unreacted_tail() {
        // A horizon so short that late source jobs are never consumed.
        let (g, chain) = pipeline();
        let sim = Simulator::new(
            &g,
            SimConfig {
                horizon: ms(40),
                record_trace: true,
                ..Default::default()
            },
        );
        let trace = sim.run().unwrap().trace.unwrap();
        // Should not panic and should produce a value for early stimuli.
        let _ = max_reaction_time(&trace, &g, &chain);
    }
}
