//! Error types for the simulator.

use core::fmt;

use disparity_model::error::ModelError;

/// Errors produced when configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation horizon must be strictly positive.
    InvalidHorizon {
        /// The offending horizon in nanoseconds.
        horizon_nanos: i64,
    },
    /// The warm-up span must be non-negative and shorter than the horizon.
    InvalidWarmup {
        /// The offending warm-up in nanoseconds.
        warmup_nanos: i64,
    },
    /// A monitored chain is not a path of the simulated graph.
    Model(ModelError),
    /// The fault-injection plan is inconsistent (see
    /// [`crate::fault::FaultPlan::validate`]).
    InvalidFaultPlan {
        /// Human-readable reason.
        reason: String,
    },
    /// Two [`crate::metrics::ObservedMetrics`] with different shapes
    /// (task or chain counts) were merged.
    MetricsShapeMismatch {
        /// Task/chain counts of the left operand.
        left: (usize, usize),
        /// Task/chain counts of the right operand.
        right: (usize, usize),
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidHorizon { horizon_nanos } => {
                write!(
                    f,
                    "simulation horizon must be positive, got {horizon_nanos}ns"
                )
            }
            SimError::InvalidWarmup { warmup_nanos } => {
                write!(
                    f,
                    "warm-up must be non-negative and below the horizon, got {warmup_nanos}ns"
                )
            }
            SimError::Model(e) => write!(f, "model error: {e}"),
            SimError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            SimError::MetricsShapeMismatch { left, right } => {
                write!(
                    f,
                    "cannot merge metrics of different shapes: \
                     {}x{} tasks/chains vs {}x{}",
                    left.0, left.1, right.0, right.1
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        assert!(!SimError::InvalidHorizon { horizon_nanos: 0 }
            .to_string()
            .is_empty());
        assert!(!SimError::InvalidWarmup { warmup_nanos: -1 }
            .to_string()
            .is_empty());
        assert!(!SimError::from(ModelError::EmptyGraph)
            .to_string()
            .is_empty());
    }
}
