#!/usr/bin/env sh
# Tier-1 gate: everything must pass offline (the workspace has no
# external crate dependencies). Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

# Staleness guard: gates below invoke release binaries directly, so a
# binary older than any source or manifest must be rebuilt first —
# smoking stale bits would green-light code that no longer exists.
ensure_fresh() {
    bin="target/release/$1"
    pkg="$2"
    if [ ! -x "$bin" ] || [ -n "$(find crates Cargo.toml \
            \( -name '*.rs' -o -name 'Cargo.toml' \) \
            -newer "$bin" -print -quit)" ]; then
        echo "==> $bin missing or stale; rebuilding $pkg"
        cargo build --release -p "$pkg"
    fi
}

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> engine cache-consistency (memoized engine vs direct theorems)"
cargo test -p disparity-core --release --test engine_consistency -q

echo "==> pairwise_engine bench smoke (cached vs uncached, bit-identical reports)"
# Bench binaries run from the package directory, so the report path must
# be absolute (see scripts/perf_snapshot.sh).
DISPARITY_BENCH_JSON="$(pwd)/target/bench-engine.json" \
    cargo bench -p disparity-bench --bench pairwise_engine
test -s target/bench-engine.json
grep -q 'pairwise_engine/sink_analysis/cached' target/bench-engine.json
grep -q 'pairwise_engine/sink_analysis/uncached' target/bench-engine.json

echo "==> benchgate (obs_overhead + service_requests vs committed baselines)"
ensure_fresh benchgate disparity-bench
rm -f target/bench-current.json
# Full-budget runs so the per-iteration minimum is a steady statistic;
# the gate compares min (not mean) because a fresh run on a busy machine
# inflates the tail, while a real regression raises every iteration.
DISPARITY_BENCH_FULL=1 DISPARITY_BENCH_JSON="$(pwd)/target/bench-current.json" \
    cargo bench -p disparity-bench --bench obs_overhead
DISPARITY_BENCH_FULL=1 DISPARITY_BENCH_JSON="$(pwd)/target/bench-current.json" \
    cargo bench -p disparity-bench --bench service_requests
./target/release/benchgate --baseline BENCH_obs_baseline.json \
    --current target/bench-current.json --stat min --floor-ns 50 --prefix bench.obs
./target/release/benchgate --baseline BENCH_service_baseline.json \
    --current target/bench-current.json --stat min --prefix bench.service_requests

echo "==> telemetry overhead proof (<5% on the warm serving path, committed baselines)"
./target/release/benchgate --baseline BENCH_service_baseline.json \
    --current BENCH_telemetry_baseline.json --threshold-pct 5 \
    --metric "bench.service_requests/disparity/warm_cache_live=bench.service_requests/disparity/warm_cache" \
    --metric "bench.service_requests/overhead/ping_live=bench.service_requests/overhead/ping"

echo "==> delta re-analysis gate (incremental == cold after every random edit)"
cargo test -p disparity-core --release --test delta_consistency -q
cargo test -p disparity-service --release --test patch_identity -q

echo "==> benchgate (delta_requests vs committed baseline + the >=10x warm-patch proof)"
rm -f target/bench-current-delta.json
DISPARITY_BENCH_FULL=1 DISPARITY_BENCH_JSON="$(pwd)/target/bench-current-delta.json" \
    cargo bench -p disparity-bench --bench delta_requests
./target/release/benchgate --baseline BENCH_delta_baseline.json \
    --current target/bench-current-delta.json --stat min --prefix bench.delta_requests
# The headline claim, re-proven on this machine's own run: a warm
# single-field edit served via `patch` is at least 10x cheaper than the
# cold pipeline (threshold -90% = current must be <=10% of the base).
./target/release/benchgate --baseline target/bench-current-delta.json \
    --current target/bench-current-delta.json --stat min --threshold-pct -90 \
    --metric "bench.delta_requests/patch/patch_warm=bench.delta_requests/patch/cold_pipeline"

echo "==> optimizer gate (B&B == exhaustive, beam >= greedy, certified plans, D007 cross-check)"
cargo test -p disparity-opt --release -q
cargo test -p disparity-service --release --test optimize_identity -q

echo "==> benchgate (opt_search vs committed baseline + the >=5x delta-scoring proof)"
rm -f target/bench-current-opt.json
DISPARITY_BENCH_FULL=1 DISPARITY_BENCH_JSON="$(pwd)/target/bench-current-opt.json" \
    cargo bench -p disparity-bench --bench opt_search
./target/release/benchgate --baseline BENCH_opt_baseline.json \
    --current target/bench-current-opt.json --stat min --prefix bench.opt_search
# The optimizer's headline claim, re-proven on this machine's own run:
# scoring a candidate buffer assignment through the incremental engine
# is at least 5x cheaper than cold re-analysis (threshold -80% = the
# delta score must come in at <=20% of the cold score).
./target/release/benchgate --baseline target/bench-current-opt.json \
    --current target/bench-current-opt.json --stat min --threshold-pct -80 \
    --metric "bench.opt_search/score/delta_scored=bench.opt_search/score/cold_scored"

echo "==> srclint gate (workspace source lint, committed allowlist)"
ensure_fresh srclint disparity-analyzer
./target/release/srclint

echo "==> conc gate (model checker litmus + queue/cache/flight harnesses)"
# Bounded-exhaustive interleaving exploration at the committed config
# sizes, seeded random passes beyond that budget, and the mutation
# corpus replayed byte-for-byte. The `model` feature swaps conc::sync's
# std re-exports for instrumented primitives; normal builds are
# untouched (the benchgate steps above prove the shim costs nothing).
cargo test -p disparity-conc --release --features model -q
cargo test -p disparity-obs --release --features model --test conc_flight -q
cargo test -p disparity-service --release --features model --test conc_model -q
cargo clippy -p disparity-conc -p disparity-obs -p disparity-service \
    --features model --all-targets -- -D warnings

echo "==> diag smoke (D0xx diagnostics, known-clean WATERS spec, deny errors)"
ensure_fresh diag disparity-analyzer
./target/release/diag specs/waters_clean.json --deny-lints

echo "==> rustdoc gate (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> soak smoke (fault-injection soundness sweep, quick profile, obs recording)"
ensure_fresh soak disparity-experiments
./target/release/soak --quick \
    --trace-out target/obs-trace.json --metrics-out target/obs-metrics.json

echo "==> obs smoke (trace + metrics emitted and non-empty)"
test -s target/obs-trace.json
test -s target/obs-metrics.json
grep -q '"disparity-obs/trace-v1"' target/obs-trace.json
grep -q '"disparity-obs/metrics-v1"' target/obs-metrics.json

echo "==> service smoke (serve + loadgen burst: cache hits, overload path, clean drain)"
ensure_fresh serve disparity-service
ensure_fresh loadgen disparity-experiments
rm -rf target/service-load.json target/service-metrics.json \
    target/service-latency-series.ndjson target/postmortems-service
# Small worker pool and queue so the overload probe reliably bounces.
./target/release/serve --addr 127.0.0.1:7414 --workers 2 --queue 4 \
    --obs --metrics-out target/service-metrics.json \
    --metrics-interval-ms 50 --postmortem-dir target/postmortems-service &
SERVE_PID=$!
# The daemon binds before printing; give it a moment, then let loadgen's
# own retry-free connect be the readiness check.
tries=0
until ./target/release/loadgen --addr 127.0.0.1:7414 \
        --spec specs/waters_clean.json --requests 1 --connections 1 \
        >/dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 25 ]; then
        echo "tier1: serve did not come up on 127.0.0.1:7414" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.2
done
./target/release/loadgen --addr 127.0.0.1:7414 \
    --spec specs/waters_clean.json --requests 40 --connections 4 \
    --require-cache-hit --probe-overload 20 --dump --shutdown \
    --latency-series target/service-latency-series.ndjson \
    --out target/service-load.json
wait "$SERVE_PID"
test -s target/service-load.json
test -s target/service-metrics.json
grep -q '"disparity-obs/metrics-v1"' target/service-metrics.json
grep -q 'service.cache' target/service-metrics.json
# Live-telemetry artifacts: the windowed latency timeline and the
# flight-recorder postmortem the `dump` op wrote.
test -s target/service-latency-series.ndjson
grep -q '"window"' target/service-latency-series.ndjson
grep -q '"disparity-obs/postmortem-v1"' target/postmortems-service/postmortem-*.ndjson

echo "==> edit-replay smoke (patch op: seeded edits, byte-identical, memo hits)"
rm -f target/edit-replay.json
./target/release/serve --addr 127.0.0.1:7415 --workers 2 --queue 16 &
SERVE_PID=$!
tries=0
until ./target/release/loadgen --addr 127.0.0.1:7415 \
        --spec specs/waters_clean.json --requests 1 --connections 1 \
        >/dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 25 ]; then
        echo "tier1: serve did not come up on 127.0.0.1:7415" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.2
done
./target/release/loadgen --addr 127.0.0.1:7415 \
    --spec specs/waters_clean.json --requests 24 --edit-replay --shutdown \
    --out target/edit-replay.json
wait "$SERVE_PID"
test -s target/edit-replay.json
grep -q '"passed": *true' target/edit-replay.json

echo "==> optimize-replay smoke (optimize op: by-base plans, byte-identical, delta-scored)"
# perception.json, not waters_clean.json: the WATERS spec has no useful
# buffer candidates (every midpoint gap is below a source period), so
# its plans are all no-ops and the scored-states assertion would trip.
rm -f target/optimize-replay.json
./target/release/serve --addr 127.0.0.1:7417 --workers 2 --queue 16 &
SERVE_PID=$!
tries=0
until ./target/release/loadgen --addr 127.0.0.1:7417 \
        --spec specs/perception.json --requests 1 --connections 1 \
        >/dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 25 ]; then
        echo "tier1: serve did not come up on 127.0.0.1:7417" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.2
done
./target/release/loadgen --addr 127.0.0.1:7417 \
    --spec specs/perception.json --requests 10 --optimize-replay --shutdown \
    --out target/optimize-replay.json
wait "$SERVE_PID"
test -s target/optimize-replay.json
grep -q '"passed": *true' target/optimize-replay.json

echo "==> pareto artifact (optctl budget sweep, frontier CSV written)"
ensure_fresh optctl disparity-experiments
rm -rf target/pareto-results
mkdir -p target/pareto-results
./target/release/optctl --systems 2 --budgets 0,2 --out target/pareto-results
test -s target/pareto-results/pareto.csv

echo "==> protocol fuzz smoke (10k seeded mutations + corpus replay)"
cargo test -p disparity-service --release --test proto_fuzz -q

echo "==> chaos smoke (chaosproxy + retrying loadgen, every fault kind once)"
ensure_fresh chaosproxy disparity-experiments
rm -rf target/chaos-*.json target/chaos-*-series.ndjson target/postmortems-chaos
./target/release/serve --addr 127.0.0.1:7416 --workers 2 --queue 16 \
    --metrics-interval-ms 50 --postmortem-dir target/postmortems-chaos &
CHAOS_SERVE_PID=$!
tries=0
until ./target/release/loadgen --addr 127.0.0.1:7416 \
        --spec specs/waters_clean.json --requests 1 --connections 1 \
        >/dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -ge 25 ]; then
        echo "tier1: serve did not come up on 127.0.0.1:7416" >&2
        kill "$CHAOS_SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.2
done
port=7420
for kind in none delay split garbage truncate reset; do
    ./target/release/chaosproxy --listen "127.0.0.1:$port" \
        --upstream 127.0.0.1:7416 --kind "$kind" --seed 7 \
        > "target/chaosproxy-$kind.log" &
    PROXY_PID=$!
    tries=0
    until grep -q 'listening on' "target/chaosproxy-$kind.log"; do
        tries=$((tries + 1))
        if [ "$tries" -ge 25 ]; then
            echo "tier1: chaosproxy ($kind) did not come up" >&2
            kill "$PROXY_PID" "$CHAOS_SERVE_PID" 2>/dev/null || true
            exit 1
        fi
        sleep 0.2
    done
    # Distinct --soak-tag per kind -> distinct poison spec, so the
    # quarantine-after-two gate re-proves itself under every fault kind.
    if ! ./target/release/loadgen --addr "127.0.0.1:$port" \
            --spec specs/waters_clean.json --requests 24 --connections 3 \
            --chaos-soak --retries 6 --backoff-ms 5 --soak-tag "$kind" \
            --direct-addr 127.0.0.1:7416 --out "target/chaos-$kind.json" \
            --latency-series "target/chaos-$kind-series.ndjson"; then
        echo "tier1: chaos soak failed under kind '$kind'" >&2
        kill "$PROXY_PID" "$CHAOS_SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    kill "$PROXY_PID" 2>/dev/null || true
    wait "$PROXY_PID" 2>/dev/null || true
    test -s "target/chaos-$kind.json"
    grep -q '"passed": *true' "target/chaos-$kind.json"
    test -s "target/chaos-$kind-series.ndjson"
    port=$((port + 1))
done
./target/release/loadgen --addr 127.0.0.1:7416 \
    --spec specs/waters_clean.json --requests 1 --connections 1 \
    --shutdown >/dev/null
wait "$CHAOS_SERVE_PID"
# Every kind's quarantine probe panicked a worker twice: the flight
# recorder must have written panic + quarantine postmortems.
grep -ql '"reason":"panic"' target/postmortems-chaos/postmortem-*.ndjson
grep -ql '"reason":"quarantine"' target/postmortems-chaos/postmortem-*.ndjson

echo "tier1: all gates passed"
