#!/usr/bin/env sh
# Tier-1 gate: everything must pass offline (the workspace has no
# external crate dependencies). Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> engine cache-consistency (memoized engine vs direct theorems)"
cargo test -p disparity-core --release --test engine_consistency -q

echo "==> pairwise_engine bench smoke (cached vs uncached, bit-identical reports)"
# Bench binaries run from the package directory, so the report path must
# be absolute (see scripts/perf_snapshot.sh).
DISPARITY_BENCH_JSON="$(pwd)/target/bench-engine.json" \
    cargo bench -p disparity-bench --bench pairwise_engine
test -s target/bench-engine.json
grep -q 'pairwise_engine/sink_analysis/cached' target/bench-engine.json
grep -q 'pairwise_engine/sink_analysis/uncached' target/bench-engine.json

echo "==> srclint gate (workspace source lint, committed allowlist)"
cargo run -p disparity-analyzer --release --bin srclint

echo "==> diag smoke (D0xx diagnostics, known-clean WATERS spec, deny errors)"
cargo run -p disparity-analyzer --release --bin diag -- specs/waters_clean.json --deny-lints

echo "==> rustdoc gate (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> soak smoke (fault-injection soundness sweep, quick profile, obs recording)"
cargo run -p disparity-experiments --release --bin soak -- --quick \
    --trace-out target/obs-trace.json --metrics-out target/obs-metrics.json

echo "==> obs smoke (trace + metrics emitted and non-empty)"
test -s target/obs-trace.json
test -s target/obs-metrics.json
grep -q '"disparity-obs/trace-v1"' target/obs-trace.json
grep -q '"disparity-obs/metrics-v1"' target/obs-metrics.json

echo "tier1: all gates passed"
