#!/usr/bin/env sh
# Tier-1 gate: everything must pass offline (the workspace has no
# external crate dependencies). Mirrors .github/workflows/ci.yml.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> soak smoke (fault-injection soundness sweep, quick profile, obs recording)"
cargo run -p disparity-experiments --release --bin soak -- --quick \
    --trace-out target/obs-trace.json --metrics-out target/obs-metrics.json

echo "==> obs smoke (trace + metrics emitted and non-empty)"
test -s target/obs-trace.json
test -s target/obs-metrics.json
grep -q '"disparity-obs/trace-v1"' target/obs-trace.json
grep -q '"disparity-obs/metrics-v1"' target/obs-metrics.json

echo "tier1: all gates passed"
