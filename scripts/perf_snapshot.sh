#!/usr/bin/env sh
# Capture a benchmark snapshot as a disparity-obs metrics report.
#
# Runs every bench binary with DISPARITY_BENCH_JSON pointed at one file;
# the in-tree criterion shim merges each binary's min/median/max timings
# into it (histogram `bench.<name>`, nanoseconds per iteration).
#
#   scripts/perf_snapshot.sh [OUT.json]
#
# Default output: BENCH_obs_baseline.json at the repo root — the
# committed baseline used to eyeball perf drift across PRs. Absolute
# numbers are machine-dependent; compare shapes and ratios, not raw ns.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_obs_baseline.json}"
# Cargo runs bench binaries from the package directory, so anchor a
# relative OUT to the repo root before handing it over.
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac
rm -f "$out"

DISPARITY_BENCH_JSON="$out" cargo bench -p disparity-bench

test -s "$out"
echo "perf snapshot written to $out"
