#!/usr/bin/env sh
# Capture a benchmark snapshot as a disparity-obs metrics report.
#
# Runs bench binaries with DISPARITY_BENCH_JSON pointed at one file;
# the in-tree criterion shim merges each binary's min/median/max timings
# into it (histogram `bench.<name>`, nanoseconds per iteration).
#
#   scripts/perf_snapshot.sh [OUT.json] [BENCH_NAME]
#
# Default output: BENCH_obs_baseline.json at the repo root — the
# committed baseline used to eyeball perf drift across PRs. Absolute
# numbers are machine-dependent; compare shapes and ratios, not raw ns.
#
# With BENCH_NAME, only that bench binary runs (e.g.
# `scripts/perf_snapshot.sh BENCH_engine_baseline.json pairwise_engine`
# refreshes the committed engine-vs-direct baseline).
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_obs_baseline.json}"
bench="${2:-}"
# Cargo runs bench binaries from the package directory, so anchor a
# relative OUT to the repo root before handing it over.
case "$out" in
    /*) ;;
    *) out="$(pwd)/$out" ;;
esac
rm -f "$out"

if [ -n "$bench" ]; then
    DISPARITY_BENCH_JSON="$out" cargo bench -p disparity-bench --bench "$bench"
else
    DISPARITY_BENCH_JSON="$out" cargo bench -p disparity-bench
fi

test -s "$out"
echo "perf snapshot written to $out"
